//! A dependency-free parser for the TOML subset scenario files use.
//!
//! The offline serde shim has no deserializer, so this crate owns its own
//! lexer/parser. The subset covers everything scenario files need:
//!
//! * comments (`# …`), blank lines;
//! * `[table]` and `[[array-of-tables]]` headers with dotted paths;
//! * `key = value` with bare (`[A-Za-z0-9_-]`) or quoted keys, including
//!   dotted key paths;
//! * basic `"…"` strings (with `\"`, `\\`, `\n`, `\r`, `\t`, `\uXXXX`
//!   escapes) and literal `'…'` strings;
//! * integers (with `_` separators), floats, booleans;
//! * single-line arrays of any supported value.
//!
//! Multi-line strings/arrays, inline tables and dates are *not* supported;
//! they fail with a diagnostic naming the line and column, as does every
//! other malformed construct. The parser never panics on any input — this
//! is asserted by a proptest over arbitrary strings.

use std::fmt;

/// A source position: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A parse failure, pointing at the offending line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem is.
    pub pos: Pos,
    /// What the problem is.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (basic or literal).
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array; elements keep their own positions.
    Array(Vec<(Value, Pos)>),
    /// A sub-table (`[a.b]` or a dotted key prefix).
    Table(Table),
    /// An array of tables (`[[a.b]]`).
    Tables(Vec<Table>),
}

impl Value {
    /// Human name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
            Value::Table(_) => "a table",
            Value::Tables(_) => "an array of tables",
        }
    }
}

/// One `key = value` (or sub-table) entry of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The key, unquoted.
    pub key: String,
    /// Position of the key (for "unknown key" diagnostics).
    pub key_pos: Pos,
    /// Position of the value (for type diagnostics).
    pub value_pos: Pos,
    /// The value.
    pub value: Value,
}

/// A table: entries in insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Position of the table header (or of the first key that implied it).
    pub pos: Pos,
    entries: Vec<Entry>,
    /// Whether the table was named by an explicit `[header]` (duplicate
    /// explicit headers are rejected).
    explicit: bool,
}

impl Default for Pos {
    fn default() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl Table {
    fn new(pos: Pos) -> Self {
        Table {
            pos,
            entries: Vec::new(),
            explicit: false,
        }
    }

    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Entry> {
        self.entries.iter_mut().find(|e| e.key == key)
    }
}

/// Parses a complete document into its root table.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the line and column of the first
/// malformed construct.
///
/// # Examples
///
/// ```
/// use actuary_scenario::toml::{parse, Value};
///
/// let doc = parse("name = \"demo\"\n[nodes.7nm]\nwafer_price_usd = 9_346\n").unwrap();
/// assert!(matches!(doc.get("name").unwrap().value, Value::Str(_)));
/// let err = parse("flow = chip-last\n").unwrap_err();
/// assert_eq!((err.pos.line, err.pos.col), (1, 8));
/// ```
pub fn parse(input: &str) -> Result<Table, ParseError> {
    let mut root = Table::new(Pos { line: 1, col: 1 });
    // Path of the table the current `key = value` lines land in; empty =
    // root. Re-resolved per line (paths are short).
    let mut current: Vec<String> = Vec::new();
    for (index, raw_line) in input.lines().enumerate() {
        let line_no = (index + 1) as u32;
        let mut cur = Cursor::new(raw_line, line_no);
        cur.skip_ws();
        if cur.at_end_or_comment() {
            continue;
        }
        if cur.peek() == Some('[') {
            current = parse_header(&mut cur, &mut root)?;
        } else {
            parse_key_value(&mut cur, &mut root, &current)?;
        }
    }
    Ok(root)
}

/// Character cursor over one line, tracking the column.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn new(line: &str, line_no: u32) -> Self {
        Cursor {
            chars: line.chars().collect(),
            i: 0,
            line: line_no,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: (self.i + 1) as u32,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.i += 1;
        }
    }

    /// Whether the rest of the line is only whitespace or a comment.
    fn at_end_or_comment(&self) -> bool {
        matches!(self.peek(), None | Some('#'))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    /// Errors unless the rest of the line is whitespace/comment.
    fn expect_line_end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.at_end_or_comment() {
            Ok(())
        } else {
            Err(self.error(format!(
                "unexpected trailing content {:?}",
                self.chars[self.i..].iter().collect::<String>()
            )))
        }
    }
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Parses one key segment: bare (without dots) or quoted.
fn parse_key_segment(cur: &mut Cursor) -> Result<(String, Pos), ParseError> {
    cur.skip_ws();
    let pos = cur.pos();
    match cur.peek() {
        Some('"') | Some('\'') => {
            let s = parse_string(cur)?;
            Ok((s, pos))
        }
        Some(c) if is_bare_key_char(c) && c != '.' => {
            let mut key = String::new();
            while let Some(c) = cur.peek() {
                if is_bare_key_char(c) && c != '.' {
                    key.push(c);
                    cur.i += 1;
                } else {
                    break;
                }
            }
            Ok((key, pos))
        }
        Some(c) => Err(cur.error(format!("expected a key, got {c:?}"))),
        None => Err(cur.error("expected a key, got end of line")),
    }
}

/// Parses a dotted key path (`a.b."c d"`).
fn parse_key_path(cur: &mut Cursor) -> Result<Vec<(String, Pos)>, ParseError> {
    let mut path = vec![parse_key_segment(cur)?];
    loop {
        cur.skip_ws();
        if cur.peek() == Some('.') {
            cur.bump();
            path.push(parse_key_segment(cur)?);
        } else {
            return Ok(path);
        }
    }
}

/// Handles a `[path]` / `[[path]]` header line; returns the new current
/// path.
fn parse_header(cur: &mut Cursor, root: &mut Table) -> Result<Vec<String>, ParseError> {
    let header_pos = cur.pos();
    cur.bump(); // consume '['
    let array = cur.peek() == Some('[');
    if array {
        cur.bump();
    }
    let path = parse_key_path(cur)?;
    cur.skip_ws();
    for _ in 0..if array { 2 } else { 1 } {
        if cur.peek() == Some(']') {
            cur.bump();
        } else {
            return Err(cur.error(if array {
                "expected `]]` closing the array-of-tables header"
            } else {
                "expected `]` closing the table header"
            }));
        }
    }
    cur.expect_line_end()?;

    // Walk to the parent of the last segment, descending into the newest
    // element of any array-of-tables on the way.
    let Some((last_entry, parents)) = path.split_last() else {
        return Err(cur.error("expected at least one key segment in the table header"));
    };
    let (last, last_pos) = last_entry.clone();
    let mut table = root;
    for (segment, seg_pos) in parents {
        table = descend(table, segment, *seg_pos)?;
    }
    if array {
        match table.get_mut(&last) {
            None => {
                table.entries.push(Entry {
                    key: last,
                    key_pos: last_pos,
                    value_pos: header_pos,
                    value: Value::Tables(vec![Table::new(header_pos)]),
                });
            }
            Some(entry) => match &mut entry.value {
                Value::Tables(tables) => tables.push(Table::new(header_pos)),
                other => {
                    return Err(ParseError {
                        pos: last_pos,
                        message: format!(
                            "key `{}` is already defined as {}, cannot extend it as an \
                             array of tables",
                            entry.key,
                            other.type_name()
                        ),
                    })
                }
            },
        }
    } else {
        match table.get_mut(&last) {
            None => {
                let mut t = Table::new(header_pos);
                t.explicit = true;
                table.entries.push(Entry {
                    key: last,
                    key_pos: last_pos,
                    value_pos: header_pos,
                    value: Value::Table(t),
                });
            }
            Some(entry) => match &mut entry.value {
                Value::Table(t) if !t.explicit => t.explicit = true,
                Value::Table(_) => {
                    return Err(ParseError {
                        pos: last_pos,
                        message: format!("table `{}` is defined twice", entry.key),
                    })
                }
                other => {
                    return Err(ParseError {
                        pos: last_pos,
                        message: format!(
                            "key `{}` is already defined as {}, cannot redefine it as a table",
                            entry.key,
                            other.type_name()
                        ),
                    })
                }
            },
        }
    }
    Ok(path.into_iter().map(|(s, _)| s).collect())
}

/// Descends one segment, creating an implicit table if absent and entering
/// the last element of an array of tables.
fn descend<'t>(table: &'t mut Table, segment: &str, pos: Pos) -> Result<&'t mut Table, ParseError> {
    let idx = match table.entries.iter().position(|e| e.key == segment) {
        Some(idx) => idx,
        None => {
            table.entries.push(Entry {
                key: segment.to_string(),
                key_pos: pos,
                value_pos: pos,
                value: Value::Table(Table::new(pos)),
            });
            table.entries.len() - 1
        }
    };
    match &mut table.entries[idx].value {
        Value::Table(t) => Ok(t),
        Value::Tables(tables) => match tables.last_mut() {
            Some(t) => Ok(t),
            None => Err(ParseError {
                pos,
                message: format!("array of tables `{segment}` has no elements"),
            }),
        },
        other => Err(ParseError {
            pos,
            message: format!(
                "key `{segment}` is already defined as {}, cannot use it as a table",
                other.type_name()
            ),
        }),
    }
}

/// Handles a `key = value` line inside the table at `current`.
fn parse_key_value(
    cur: &mut Cursor,
    root: &mut Table,
    current: &[String],
) -> Result<(), ParseError> {
    let path = parse_key_path(cur)?;
    cur.skip_ws();
    if cur.peek() != Some('=') {
        return Err(cur.error("expected `=` after the key"));
    }
    cur.bump();
    cur.skip_ws();
    let value_pos = cur.pos();
    let value = parse_value(cur)?;
    cur.expect_line_end()?;

    let Some((last_entry, parents)) = path.split_last() else {
        return Err(cur.error("expected a key before `=`"));
    };
    let (key, key_pos) = last_entry.clone();
    let mut table = root;
    for segment in current {
        // The current path was established by a header, so this never
        // fails; descend re-resolves it to satisfy the borrow checker.
        table = descend(table, segment, Pos::default())?;
    }
    for (segment, seg_pos) in parents {
        table = descend(table, segment, *seg_pos)?;
    }
    if let Some(existing) = table.get(&key) {
        return Err(ParseError {
            pos: key_pos,
            message: format!(
                "duplicate key `{key}` (first defined at {})",
                existing.key_pos
            ),
        });
    }
    table.entries.push(Entry {
        key,
        key_pos,
        value_pos,
        value,
    });
    Ok(())
}

/// Parses one value at the cursor.
fn parse_value(cur: &mut Cursor) -> Result<Value, ParseError> {
    match cur.peek() {
        Some('"') | Some('\'') => Ok(Value::Str(parse_string(cur)?)),
        Some('[') => parse_array(cur),
        Some('{') => Err(cur.error("inline tables are not supported; use a [table] header")),
        Some(_) => parse_scalar(cur),
        None => Err(cur.error("expected a value, got end of line")),
    }
}

/// Parses a basic or literal string (the opening quote is at the cursor).
fn parse_string(cur: &mut Cursor) -> Result<String, ParseError> {
    let Some(quote) = cur.bump() else {
        return Err(cur.error("expected a string"));
    };
    let mut out = String::new();
    loop {
        match cur.bump() {
            None => {
                return Err(cur.error(format!(
                    "unterminated string (multi-line strings are not supported); \
                     expected closing {quote:?}"
                )))
            }
            Some(c) if c == quote => return Ok(out),
            Some('\\') if quote == '"' => {
                let escape_pos = cur.pos();
                match cur.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000C}'),
                    Some('u') => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            match cur.bump() {
                                Some(h) if h.is_ascii_hexdigit() => code.push(h),
                                _ => {
                                    return Err(ParseError {
                                        pos: escape_pos,
                                        message: "\\u escape needs four hex digits".to_string(),
                                    })
                                }
                            }
                        }
                        let n = u32::from_str_radix(&code, 16).map_err(|_| ParseError {
                            pos: escape_pos,
                            message: "\\u escape needs four hex digits".to_string(),
                        })?;
                        match char::from_u32(n) {
                            Some(c) => out.push(c),
                            None => {
                                return Err(ParseError {
                                    pos: escape_pos,
                                    message: format!("\\u{code} is not a valid character"),
                                })
                            }
                        }
                    }
                    other => {
                        return Err(ParseError {
                            pos: escape_pos,
                            message: match other {
                                Some(c) => format!("unsupported escape `\\{c}`"),
                                None => "unsupported escape at end of line".to_string(),
                            },
                        })
                    }
                }
            }
            Some(c) => out.push(c),
        }
    }
}

/// Parses a single-line array.
fn parse_array(cur: &mut Cursor) -> Result<Value, ParseError> {
    cur.bump(); // consume '['
    let mut items = Vec::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            None | Some('#') => {
                return Err(cur.error(
                    "unterminated array (multi-line arrays are not supported); expected `]`",
                ))
            }
            Some(']') => {
                cur.bump();
                return Ok(Value::Array(items));
            }
            _ => {
                let pos = cur.pos();
                let value = parse_value(cur)?;
                items.push((value, pos));
                cur.skip_ws();
                match cur.peek() {
                    Some(',') => {
                        cur.bump();
                    }
                    Some(']') | None | Some('#') => {}
                    Some(c) => {
                        return Err(
                            cur.error(format!("expected `,` or `]` in the array, got {c:?}"))
                        )
                    }
                }
            }
        }
    }
}

/// Parses a boolean or number token.
fn parse_scalar(cur: &mut Cursor) -> Result<Value, ParseError> {
    let start_pos = cur.pos();
    let mut token = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.' | '_') {
            token.push(c);
            cur.i += 1;
        } else {
            break;
        }
    }
    if token.is_empty() {
        return Err(cur.error(format!(
            "expected a value, got {:?}",
            cur.peek().map(String::from).unwrap_or_default()
        )));
    }
    match token.as_str() {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let bad = |what: &str| ParseError {
        pos: start_pos,
        message: format!("invalid {what} {token:?}"),
    };
    let numeric = token.replace('_', "");
    if numeric.contains(['.', 'e', 'E']) {
        let f: f64 = numeric.parse().map_err(|_| bad("float"))?;
        if !f.is_finite() {
            return Err(bad("float"));
        }
        Ok(Value::Float(f))
    } else if numeric.starts_with("0x") || numeric.starts_with("0o") || numeric.starts_with("0b") {
        Err(ParseError {
            pos: start_pos,
            message: format!("non-decimal integers are not supported, got {token:?}"),
        })
    } else {
        numeric.parse().map(Value::Int).map_err(|_| ParseError {
            pos: start_pos,
            message: format!(
                "invalid value {token:?} (expected a string, number, boolean, or array)"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos_of(err: &ParseError) -> (u32, u32) {
        (err.pos.line, err.pos.col)
    }

    #[test]
    fn parses_scalars_and_positions() {
        let doc = parse(concat!(
            "# a scenario\n",
            "name = \"demo\"\n",
            "count = 4\n",
            "price = 9_346.5\n",
            "on = true\n",
        ))
        .unwrap();
        assert_eq!(doc.get("name").unwrap().value, Value::Str("demo".into()));
        assert_eq!(doc.get("count").unwrap().value, Value::Int(4));
        assert_eq!(doc.get("price").unwrap().value, Value::Float(9346.5));
        assert_eq!(doc.get("on").unwrap().value, Value::Bool(true));
        let entry = doc.get("price").unwrap();
        assert_eq!((entry.key_pos.line, entry.key_pos.col), (4, 1));
        assert_eq!((entry.value_pos.line, entry.value_pos.col), (4, 9));
    }

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = parse(concat!(
            "[nodes.7nm]\n",
            "defect = 0.09\n",
            "[nodes.7nm.d2d]\n",
            "area_fraction = 0.1\n",
            "[[portfolio]]\n",
            "name = \"a\"\n",
            "[[portfolio]]\n",
            "name = \"b\"\n",
            "[[portfolio.system]]\n",
            "name = \"sys\"\n",
        ))
        .unwrap();
        let Value::Table(nodes) = &doc.get("nodes").unwrap().value else {
            panic!("nodes must be a table");
        };
        let Value::Table(n7) = &nodes.get("7nm").unwrap().value else {
            panic!("7nm must be a table");
        };
        assert_eq!(n7.get("defect").unwrap().value, Value::Float(0.09));
        assert!(matches!(n7.get("d2d").unwrap().value, Value::Table(_)));
        let Value::Tables(jobs) = &doc.get("portfolio").unwrap().value else {
            panic!("portfolio must be an array of tables");
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().value, Value::Str("a".into()));
        // The nested [[portfolio.system]] lands in the *last* element.
        assert!(jobs[0].get("system").is_none());
        assert!(matches!(
            jobs[1].get("system").unwrap().value,
            Value::Tables(_)
        ));
    }

    #[test]
    fn parses_arrays_and_dotted_keys() {
        let doc = parse(concat!(
            "areas = [100, 200.5, 300]\n",
            "labels = [\"a\", 'b',]\n",
            "d2d.area_fraction = 0.1\n",
        ))
        .unwrap();
        let Value::Array(areas) = &doc.get("areas").unwrap().value else {
            panic!("array");
        };
        assert_eq!(areas.len(), 3);
        assert_eq!(areas[1].0, Value::Float(200.5));
        assert_eq!((areas[1].1.line, areas[1].1.col), (1, 15));
        let Value::Array(labels) = &doc.get("labels").unwrap().value else {
            panic!("array");
        };
        assert_eq!(labels.len(), 2);
        let Value::Table(d2d) = &doc.get("d2d").unwrap().value else {
            panic!("dotted key must create a table");
        };
        assert_eq!(d2d.get("area_fraction").unwrap().value, Value::Float(0.1));
    }

    #[test]
    fn string_escapes() {
        let doc = parse("s = \"a\\\"b\\\\c\\n\\u0041\"\n").unwrap();
        assert_eq!(doc.get("s").unwrap().value, Value::Str("a\"b\\c\nA".into()));
    }

    #[test]
    fn rejects_malformed_input_with_positions() {
        // (input, expected line, expected column, message fragment)
        let cases: &[(&str, u32, u32, &str)] = &[
            ("flow = chip-last\n", 1, 8, "invalid value"),
            ("a = 1\na = 2\n", 2, 1, "duplicate key `a`"),
            ("a = \"unterminated\n", 1, 18, "unterminated string"),
            ("a = [1, 2\n", 1, 10, "unterminated array"),
            ("a = {b = 1}\n", 1, 5, "inline tables are not supported"),
            ("[t]\n[t]\n", 2, 2, "defined twice"),
            ("a = 1\n[a]\n", 2, 2, "already defined as an integer"),
            ("= 3\n", 1, 1, "expected a key"),
            ("a 3\n", 1, 3, "expected `=`"),
            ("a = 3 junk\n", 1, 7, "trailing content"),
            ("[unclosed\n", 1, 10, "expected `]`"),
            ("a = 1.2.3\n", 1, 5, "invalid float"),
            ("a = 0xff\n", 1, 5, "non-decimal"),
            ("a = \"\\q\"\n", 1, 7, "unsupported escape"),
        ];
        for (input, line, col, fragment) in cases {
            let err = parse(input).expect_err(input);
            assert_eq!(pos_of(&err), (*line, *col), "{input:?}: {err}");
            assert!(
                err.message.contains(fragment),
                "{input:?}: {err} must mention {fragment:?}"
            );
        }
    }

    #[test]
    fn header_after_array_of_tables_extends_last_element() {
        let doc = parse("[[jobs]]\nname = \"a\"\n[jobs.sub]\nx = 1\n").unwrap();
        let Value::Tables(jobs) = &doc.get("jobs").unwrap().value else {
            panic!("array of tables");
        };
        assert!(matches!(jobs[0].get("sub").unwrap().value, Value::Table(_)));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc = parse("\n# comment\n  \t\na = 1 # trailing\n").unwrap();
        assert_eq!(doc.get("a").unwrap().value, Value::Int(1));
    }

    #[test]
    fn quoted_keys() {
        let doc = parse("\"2.5d\" = 1\n['lit key'] \nx = 2\n").unwrap();
        assert_eq!(doc.get("2.5d").unwrap().value, Value::Int(1));
        let Value::Table(t) = &doc.get("lit key").unwrap().value else {
            panic!("quoted header");
        };
        assert_eq!(t.get("x").unwrap().value, Value::Int(2));
    }
}
