//! Lowering `[nodes]` / `[packaging]` tables into a [`TechLibrary`], and
//! the inverse: serializing a library back to scenario form.
//!
//! # `extends` overlay semantics
//!
//! `extends = "preset"` (the default) starts from
//! [`TechLibrary::paper_defaults`]; `extends = "none"` starts empty. A
//! `[nodes.<id>]` table whose id exists in the base library *overlays* it:
//! only the keys present are replaced, everything else keeps the base
//! calibration — so a scenario can override one wafer price without
//! restating the paper's presets. A new id must provide the full required
//! set (`defect_density`, `wafer_price_usd`, `k_module_usd`, `k_chip_usd`,
//! and a mask-set price). `[packaging.<kind>]` overlays the same way.

use actuary_tech::{
    D2dSpec, IntegrationKind, InterposerSpec, PackagingTech, ProcessNode, TechLibrary,
};
use actuary_units::{Money, Prob};
use actuary_yield::{DefectDensity, WaferSpec};

use crate::error::ScenarioError;
use crate::schema::{Spanned, View};
use crate::toml::Pos;

/// Converts a spanned dollar amount into [`Money`].
fn money(v: Spanned<f64>) -> Result<Money, ScenarioError> {
    Money::from_usd(v.value).map_err(|e| ScenarioError::schema(v.pos, e.to_string()))
}

/// Converts a spanned probability into [`Prob`].
fn prob(v: Spanned<f64>) -> Result<Prob, ScenarioError> {
    Prob::new(v.value).map_err(|e| ScenarioError::schema(v.pos, e.to_string()))
}

/// Reads a money amount given either as dollars (`<base>_usd`) or millions
/// (`<base>_musd`); presence of both is rejected.
fn opt_money_usd_or_musd(
    view: &mut View<'_>,
    usd_key: &'static str,
    musd_key: &'static str,
) -> Result<Option<Money>, ScenarioError> {
    let usd = view.opt_f64(usd_key)?;
    let musd = view.opt_f64(musd_key)?;
    match (usd, musd) {
        (Some(_), Some(m)) => Err(ScenarioError::schema(
            m.pos,
            format!(
                "give `{usd_key}` or `{musd_key}` in {}, not both",
                view.context()
            ),
        )),
        (Some(u), None) => Ok(Some(money(u)?)),
        (None, Some(m)) => {
            Ok(Some(Money::from_musd(m.value).map_err(|e| {
                ScenarioError::schema(m.pos, e.to_string())
            })?))
        }
        (None, None) => Ok(None),
    }
}

/// Reads an optional `[.. .wafer]` sub-table, overlaying `base`.
fn opt_wafer(view: &mut View<'_>, base: WaferSpec) -> Result<WaferSpec, ScenarioError> {
    let Some(mut wafer) = view.opt_table("wafer")? else {
        return Ok(base);
    };
    let pos = wafer.pos();
    let diameter = wafer
        .opt_f64("diameter_mm")?
        .map_or(base.diameter_mm(), |s| s.value);
    let edge = wafer
        .opt_f64("edge_exclusion_mm")?
        .map_or(base.edge_exclusion_mm(), |s| s.value);
    let scribe = wafer
        .opt_f64("scribe_lane_mm")?
        .map_or(base.scribe_lane_mm(), |s| s.value);
    wafer.deny_unknown()?;
    WaferSpec::new(diameter, edge, scribe).map_err(|e| ScenarioError::schema(pos, e.to_string()))
}

/// Lowers one `[nodes.<id>]` table, overlaying `base` when present.
fn lower_node(
    id: &str,
    mut view: View<'_>,
    base: Option<&ProcessNode>,
) -> Result<ProcessNode, ScenarioError> {
    let table_pos = view.pos();
    let defect = view.opt_f64("defect_density")?;
    // lint:allow(unit-suffix): `cluster` is the paper's dimensionless α; the key is scenario-file API
    let cluster = view.opt_f64("cluster")?;
    let wafer_price = view.opt_f64("wafer_price_usd")?.map(money).transpose()?;
    let k_module = view.opt_f64("k_module_usd")?.map(money).transpose()?;
    let k_chip = view.opt_f64("k_chip_usd")?.map(money).transpose()?;
    let mask_set = opt_money_usd_or_musd(&mut view, "mask_set_usd", "mask_set_musd")?;
    let ip_license = opt_money_usd_or_musd(&mut view, "ip_license_usd", "ip_license_musd")?;
    let relative_density = view.opt_f64("relative_density")?;
    let d2d = match view.opt_table("d2d")? {
        None => None,
        Some(mut d2d_view) => {
            let pos = d2d_view.pos();
            let fraction = d2d_view.opt_f64("area_fraction")?;
            let nre = opt_money_usd_or_musd(&mut d2d_view, "nre_usd", "nre_musd")?;
            d2d_view.deny_unknown()?;
            let base_d2d = base.map(|n| *n.d2d()).unwrap_or_default();
            Some(
                D2dSpec::new(
                    fraction.map_or(base_d2d.area_fraction(), |s| s.value),
                    nre.unwrap_or(base_d2d.nre_cost()),
                )
                .map_err(|e| ScenarioError::schema(pos, e.to_string()))?,
            )
        }
    };
    let default_wafer = match base.map(|n| n.wafer()) {
        Some(w) => w,
        None => WaferSpec::mm300().map_err(|e| ScenarioError::schema(table_pos, e.to_string()))?,
    };
    let wafer = opt_wafer(&mut view, default_wafer)?;
    view.deny_unknown()?;

    let require = |value: Option<f64>, base_value: Option<f64>, key: &str| {
        value.or(base_value).ok_or_else(|| {
            ScenarioError::schema(
                table_pos,
                format!("new node `{id}` requires key `{key}` in [nodes.{id}]"),
            )
        })
    };
    let require_money = |value: Option<Money>, base_value: Option<Money>, key: &str| {
        value.or(base_value).ok_or_else(|| {
            ScenarioError::schema(
                table_pos,
                format!("new node `{id}` requires key `{key}` in [nodes.{id}]"),
            )
        })
    };

    let mut builder = ProcessNode::builder(id)
        .defect_density(require(
            defect.map(|s| s.value),
            base.map(|n| n.defect_density().value()),
            "defect_density",
        )?)
        .cluster(
            cluster
                .map(|s| s.value)
                .or(base.map(|n| n.cluster()))
                .unwrap_or(10.0),
        )
        .wafer_price(require_money(
            wafer_price,
            base.map(|n| n.wafer_price()),
            "wafer_price_usd",
        )?)
        .wafer(wafer)
        .k_module(require_money(
            k_module,
            base.map(|n| n.nre().k_module),
            "k_module_usd",
        )?)
        .k_chip(require_money(
            k_chip,
            base.map(|n| n.nre().k_chip),
            "k_chip_usd",
        )?)
        .mask_set(require_money(
            mask_set,
            base.map(|n| n.nre().mask_set),
            "mask_set_usd (or mask_set_musd)",
        )?)
        .ip_license(
            ip_license
                .or(base.map(|n| n.nre().ip_license))
                .unwrap_or(Money::ZERO),
        )
        .relative_density(
            relative_density
                .map(|s| s.value)
                .or(base.map(|n| n.relative_density()))
                .unwrap_or(1.0),
        );
    if let Some(d2d) = d2d.or(base.map(|n| *n.d2d())) {
        builder = builder.d2d(d2d);
    }
    builder
        .build()
        .map_err(|e| ScenarioError::schema(table_pos, e.to_string()))
}

/// Parses a packaging kind key (`soc`, `mcm`, `info`, `2.5d`).
pub(crate) fn parse_kind(s: &str, pos: Pos) -> Result<IntegrationKind, ScenarioError> {
    match s.to_ascii_lowercase().as_str() {
        "soc" => Ok(IntegrationKind::Soc),
        "mcm" => Ok(IntegrationKind::Mcm),
        "info" => Ok(IntegrationKind::Info),
        "2.5d" | "25d" | "interposer" => Ok(IntegrationKind::TwoPointFiveD),
        other => Err(ScenarioError::schema(
            pos,
            format!("unknown integration {other:?} (soc|mcm|info|2.5d)"),
        )),
    }
}

/// Lowers one `[packaging.<kind>]` table, overlaying `base` when present.
fn lower_packaging(
    kind: IntegrationKind,
    mut view: View<'_>,
    base: Option<&PackagingTech>,
) -> Result<PackagingTech, ScenarioError> {
    let table_pos = view.pos();
    let substrate = view
        .opt_f64("substrate_cost_per_mm2_usd")?
        .map(money)
        .transpose()?;
    let layer_factor = view.opt_f64("substrate_layer_factor")?;
    let body_factor = view.opt_f64("package_body_factor")?;
    let bond_yield = view.opt_f64("chip_bond_yield")?.map(prob).transpose()?;
    let attach_yield = view
        .opt_f64("substrate_attach_yield")?
        .map(prob)
        .transpose()?;
    let test_yield = view.opt_f64("package_test_yield")?.map(prob).transpose()?;
    let bond_cost = view
        .opt_f64("bond_cost_per_chip_usd")?
        .map(money)
        .transpose()?;
    let assembly = view.opt_f64("assembly_cost_usd")?.map(money).transpose()?;
    let k_package = view
        .opt_f64("k_package_per_mm2_usd")?
        .map(money)
        .transpose()?;
    let fixed_nre =
        opt_money_usd_or_musd(&mut view, "fixed_package_nre_usd", "fixed_package_nre_musd")?;
    let interposer = match view.opt_table("interposer")? {
        None => None,
        Some(mut ip_view) => {
            let pos = ip_view.pos();
            let base_ip = base.and_then(|p| p.interposer());
            let defect = ip_view.opt_f64("defect_density")?;
            // lint:allow(unit-suffix): `cluster` is the paper's dimensionless α; the key is scenario-file API
            let cluster = ip_view.opt_f64("cluster")?;
            let price = ip_view.opt_f64("wafer_price_usd")?.map(money).transpose()?;
            let area_factor = ip_view.opt_f64("area_factor")?;
            let default_wafer = match base_ip.map(|ip| ip.wafer()) {
                Some(w) => w,
                None => {
                    WaferSpec::mm300().map_err(|e| ScenarioError::schema(pos, e.to_string()))?
                }
            };
            let wafer = opt_wafer(&mut ip_view, default_wafer)?;
            ip_view.deny_unknown()?;
            let req = |name: &str, v: Option<f64>, b: Option<f64>| {
                v.or(b).ok_or_else(|| {
                    ScenarioError::schema(
                        pos,
                        format!("interposer of a new [packaging] entry requires key `{name}`"),
                    )
                })
            };
            let defect = DefectDensity::per_cm2(req(
                "defect_density",
                defect.map(|s| s.value),
                base_ip.map(|ip| ip.defect_density().value()),
            )?)
            .map_err(|e| ScenarioError::schema(pos, e.to_string()))?;
            Some(
                InterposerSpec::new(
                    defect,
                    req(
                        "cluster",
                        cluster.map(|s| s.value),
                        base_ip.map(|ip| ip.cluster()),
                    )?,
                    match price.or(base_ip.map(|ip| ip.wafer_price())) {
                        Some(p) => p,
                        None => {
                            return Err(ScenarioError::schema(
                                pos,
                                "interposer of a new [packaging] entry requires key \
                                 `wafer_price_usd`"
                                    .to_string(),
                            ))
                        }
                    },
                    wafer,
                    req(
                        "area_factor",
                        area_factor.map(|s| s.value),
                        base_ip.map(|ip| ip.area_factor()),
                    )?,
                )
                .map_err(|e| ScenarioError::schema(pos, e.to_string()))?,
            )
        }
    };
    view.deny_unknown()?;

    let mut builder = PackagingTech::builder(kind)
        .substrate_cost_per_mm2(
            substrate
                .or(base.map(|p| p.substrate_cost_per_mm2()))
                .unwrap_or(Money::ZERO),
        )
        .substrate_layer_factor(
            layer_factor
                .map(|s| s.value)
                .or(base.map(|p| p.substrate_layer_factor()))
                .unwrap_or(1.0),
        )
        .package_body_factor(
            body_factor
                .map(|s| s.value)
                .or(base.map(|p| p.package_body_factor()))
                .unwrap_or(4.0),
        )
        .chip_bond_yield(
            bond_yield
                .or(base.map(|p| p.chip_bond_yield()))
                .unwrap_or(Prob::ONE),
        )
        .substrate_attach_yield(
            attach_yield
                .or(base.map(|p| p.substrate_attach_yield()))
                .unwrap_or(Prob::ONE),
        )
        .package_test_yield(
            test_yield
                .or(base.map(|p| p.package_test_yield()))
                .unwrap_or(Prob::ONE),
        )
        .bond_cost_per_chip(
            bond_cost
                .or(base.map(|p| p.bond_cost_per_chip()))
                .unwrap_or(Money::ZERO),
        )
        .assembly_cost(
            assembly
                .or(base.map(|p| p.assembly_cost()))
                .unwrap_or(Money::ZERO),
        )
        .k_package_per_mm2(
            k_package
                .or(base.map(|p| p.k_package_per_mm2()))
                .unwrap_or(Money::ZERO),
        )
        .fixed_package_nre(
            fixed_nre
                .or(base.map(|p| p.fixed_package_nre()))
                .unwrap_or(Money::ZERO),
        );
    if let Some(ip) = interposer.or_else(|| base.and_then(|p| p.interposer().copied())) {
        builder = builder.interposer(ip);
    }
    builder
        .build()
        .map_err(|e| ScenarioError::schema(table_pos, e.to_string()))
}

/// Builds the scenario's [`TechLibrary`] from the root view: `extends` plus
/// the `[nodes]` / `[packaging]` overlay tables.
pub(crate) fn lower_library(root: &mut View<'_>) -> Result<TechLibrary, ScenarioError> {
    let mut library = match root.opt_str("extends")? {
        None => TechLibrary::paper_defaults()
            .map_err(|e| ScenarioError::schema(Pos::default(), e.to_string()))?,
        Some(s) => match s.value {
            "preset" | "paper" => TechLibrary::paper_defaults()
                .map_err(|e| ScenarioError::schema(s.pos, e.to_string()))?,
            "none" | "empty" => TechLibrary::new(),
            other => {
                return Err(ScenarioError::schema(
                    s.pos,
                    format!("unknown base library {other:?} (preset|none)"),
                ))
            }
        },
    };
    if let Some(nodes) = root.opt_table("nodes")? {
        // Each entry of [nodes] is one node table; iterate in file order.
        for entry in nodes_entries(&nodes)? {
            let (id, table) = entry;
            let base = library.node(id).ok().cloned();
            let node = lower_node(id, View::new(table, format!("[nodes.{id}]")), base.as_ref())?;
            library.insert_node(node);
        }
    }
    if let Some(packaging) = root.opt_table("packaging")? {
        for (key, key_pos, table) in table_children(&packaging, "[packaging]")? {
            let kind = parse_kind(key, key_pos)?;
            let base = library.packaging(kind).ok().cloned();
            let tech = lower_packaging(
                kind,
                View::new(table, format!("[packaging.{key}]")),
                base.as_ref(),
            )?;
            library.insert_packaging(tech);
        }
    }
    Ok(library)
}

/// The `[nodes]` children as `(id, table)` pairs, rejecting non-table
/// entries.
fn nodes_entries<'a>(
    nodes: &View<'a>,
) -> Result<Vec<(&'a str, &'a crate::toml::Table)>, ScenarioError> {
    let mut out = Vec::new();
    for (key, _pos, table) in table_children(nodes, "[nodes]")? {
        out.push((key, table));
    }
    Ok(out)
}

/// Every child entry of a view as `(key, key position, table)`, erroring on
/// non-table children.
fn table_children<'a>(
    view: &View<'a>,
    context: &str,
) -> Result<Vec<(&'a str, Pos, &'a crate::toml::Table)>, ScenarioError> {
    let mut out = Vec::new();
    for entry in view_table_entries(view) {
        match &entry.value {
            crate::toml::Value::Table(t) => out.push((entry.key.as_str(), entry.key_pos, t)),
            other => {
                return Err(ScenarioError::schema(
                    entry.key_pos,
                    format!(
                        "entry `{}` of {context} must be a table, got {}",
                        entry.key,
                        other.type_name()
                    ),
                ))
            }
        }
    }
    Ok(out)
}

fn view_table_entries<'a>(view: &View<'a>) -> &'a [crate::toml::Entry] {
    view.raw_entries()
}

/// Renders a key for a `[header]` path: bare when possible, quoted (with
/// escapes) otherwise — so ids like `2.5d` or `8.5nm` survive the trip.
fn toml_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'));
    if bare {
        key.to_string()
    } else {
        toml_string(key)
    }
}

/// Renders a basic string literal with the escapes the parser understands.
fn toml_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a library to scenario form (`extends = "none"`, every
/// parameter explicit). Parsing the output and lowering it reproduces the
/// library exactly — asserted by the round-trip integration test.
pub fn library_to_scenario(name: &str, lib: &TechLibrary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "name = {}", toml_string(name));
    let _ = writeln!(out, "extends = \"none\"");
    for node in lib.nodes() {
        let id = toml_key(node.id().as_str());
        let _ = writeln!(out);
        let _ = writeln!(out, "[nodes.{id}]");
        let _ = writeln!(out, "defect_density = {}", node.defect_density().value());
        let _ = writeln!(out, "cluster = {}", node.cluster());
        let _ = writeln!(out, "wafer_price_usd = {}", node.wafer_price().usd());
        let _ = writeln!(out, "k_module_usd = {}", node.nre().k_module.usd());
        let _ = writeln!(out, "k_chip_usd = {}", node.nre().k_chip.usd());
        let _ = writeln!(out, "mask_set_usd = {}", node.nre().mask_set.usd());
        let _ = writeln!(out, "ip_license_usd = {}", node.nre().ip_license.usd());
        let _ = writeln!(out, "relative_density = {}", node.relative_density());
        let _ = writeln!(out, "[nodes.{id}.d2d]");
        let _ = writeln!(out, "area_fraction = {}", node.d2d().area_fraction());
        let _ = writeln!(out, "nre_usd = {}", node.d2d().nre_cost().usd());
        write_wafer(&mut out, &format!("nodes.{id}"), node.wafer());
    }
    for p in lib.packagings() {
        let key = match p.kind() {
            IntegrationKind::Soc => "soc".to_string(),
            IntegrationKind::Mcm => "mcm".to_string(),
            IntegrationKind::Info => "info".to_string(),
            IntegrationKind::TwoPointFiveD => toml_key("2.5d"),
        };
        let _ = writeln!(out);
        let _ = writeln!(out, "[packaging.{key}]");
        let _ = writeln!(
            out,
            "substrate_cost_per_mm2_usd = {}",
            p.substrate_cost_per_mm2().usd()
        );
        let _ = writeln!(
            out,
            "substrate_layer_factor = {}",
            p.substrate_layer_factor()
        );
        let _ = writeln!(out, "package_body_factor = {}", p.package_body_factor());
        let _ = writeln!(out, "chip_bond_yield = {}", p.chip_bond_yield().value());
        let _ = writeln!(
            out,
            "substrate_attach_yield = {}",
            p.substrate_attach_yield().value()
        );
        let _ = writeln!(
            out,
            "package_test_yield = {}",
            p.package_test_yield().value()
        );
        let _ = writeln!(
            out,
            "bond_cost_per_chip_usd = {}",
            p.bond_cost_per_chip().usd()
        );
        let _ = writeln!(out, "assembly_cost_usd = {}", p.assembly_cost().usd());
        let _ = writeln!(
            out,
            "k_package_per_mm2_usd = {}",
            p.k_package_per_mm2().usd()
        );
        let _ = writeln!(
            out,
            "fixed_package_nre_usd = {}",
            p.fixed_package_nre().usd()
        );
        if let Some(ip) = p.interposer() {
            let _ = writeln!(out, "[packaging.{key}.interposer]");
            let _ = writeln!(out, "defect_density = {}", ip.defect_density().value());
            let _ = writeln!(out, "cluster = {}", ip.cluster());
            let _ = writeln!(out, "wafer_price_usd = {}", ip.wafer_price().usd());
            let _ = writeln!(out, "area_factor = {}", ip.area_factor());
            write_wafer(&mut out, &format!("packaging.{key}.interposer"), ip.wafer());
        }
    }
    out
}

fn write_wafer(out: &mut String, path: &str, wafer: WaferSpec) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "[{path}.wafer]");
    let _ = writeln!(out, "diameter_mm = {}", wafer.diameter_mm());
    let _ = writeln!(out, "edge_exclusion_mm = {}", wafer.edge_exclusion_mm());
    let _ = writeln!(out, "scribe_lane_mm = {}", wafer.scribe_lane_mm());
}
