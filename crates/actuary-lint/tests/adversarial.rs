//! Adversarial lexer inputs: the constructs that defeat naive grepping
//! must not defeat the lexer. Each test feeds a pathological source
//! string and asserts the token stream (and test-region marking) is
//! exactly right — these are the foundations every check stands on.

use actuary_lint::lexer::{lex, TokenKind};

fn live_idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && !t.in_test)
        .map(|t| t.text.clone())
        .collect()
}

#[test]
fn raw_string_containing_unwrap_is_not_an_ident() {
    let src = r####"
fn doc() -> &'static str {
    r#"call .unwrap() and panic!("boom") freely in docs"#
}
"####;
    let idents = live_idents(src);
    assert!(!idents.contains(&"unwrap".to_string()), "{idents:?}");
    assert!(!idents.contains(&"panic".to_string()), "{idents:?}");
}

#[test]
fn raw_string_with_more_hashes_than_content_quotes() {
    let src = r###"let s = r##"inner "# quote stays inside"##; after()"###;
    let idents = live_idents(src);
    assert_eq!(idents, ["let", "s", "after"]);
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* level1 /* level2 /* level3 unwrap() */ */ still comment */ fn real() {}";
    assert_eq!(live_idents(src), ["fn", "real"]);
}

#[test]
fn block_comment_terminator_inside_string_does_not_terminate() {
    // The `*/` inside the string is string content, not a comment close.
    let src = r#"let s = "*/ not a comment close"; fn live() {}"#;
    let idents = live_idents(src);
    assert_eq!(idents, ["let", "s", "fn", "live"]);
}

#[test]
fn string_spanning_lines_keeps_line_numbers_right() {
    let src = "let s = \"line one\nline two\nline three\";\nlet after = 1;";
    let f = lex(src);
    let after = f
        .tokens
        .iter()
        .find(|t| t.text == "after")
        .expect("after token");
    assert_eq!(after.line, 4, "multi-line string must advance line count");
}

#[test]
fn cfg_test_nested_modules_and_code_after() {
    let src = r#"
fn prod_before() {}
#[cfg(test)]
mod tests {
    fn helper() { inner_test_call() }
    #[cfg(test)]
    mod nested {
        fn deeper() { deepest_call() }
    }
    fn after_nested() { still_test() }
}
fn prod_after() {}
"#;
    let f = lex(src);
    let by_name = |name: &str| -> Vec<bool> {
        f.tokens
            .iter()
            .filter(|t| t.text == name)
            .map(|t| t.in_test)
            .collect()
    };
    assert_eq!(by_name("prod_before"), [false]);
    assert_eq!(by_name("inner_test_call"), [true]);
    assert_eq!(by_name("deepest_call"), [true]);
    assert_eq!(
        by_name("still_test"),
        [true],
        "code after a nested test mod closes is still in the outer test mod"
    );
    assert_eq!(
        by_name("prod_after"),
        [false],
        "the outer test mod must close exactly at its brace"
    );
}

#[test]
fn cfg_test_on_a_path_import_does_not_open_a_region() {
    let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { live_call() }";
    let f = lex(src);
    let live = f
        .tokens
        .iter()
        .find(|t| t.text == "live_call")
        .expect("token");
    assert!(
        !live.in_test,
        "a `;`-terminated cfg(test) item must not swallow what follows"
    );
}

#[test]
fn braces_inside_strings_and_chars_do_not_move_depth() {
    let src = r#"
#[cfg(test)]
mod tests {
    fn t() { let s = "}"; let c = '}'; test_only() }
}
fn prod() { live() }
"#;
    let f = lex(src);
    let test_only = f
        .tokens
        .iter()
        .find(|t| t.text == "test_only")
        .expect("tok");
    assert!(test_only.in_test);
    let live = f.tokens.iter().find(|t| t.text == "live").expect("tok");
    assert!(
        !live.in_test,
        "`}}` inside literals must not close the test region"
    );
}

#[test]
fn lifetimes_generics_and_char_literals_disambiguate() {
    let src =
        "impl<'a, T: Iterator<Item = &'a str>> X<'a, T> { fn f(c: char) -> bool { c == 'a' } }";
    let f = lex(src);
    let lifetimes = f
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .count();
    let chars: Vec<&str> = f
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, 3);
    assert_eq!(chars, ["a"]);
}

#[test]
fn float_detection_across_literal_shapes() {
    let floats = |src: &str| -> Vec<bool> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.is_float())
            .collect()
    };
    assert_eq!(floats("a == 0.0"), [true]);
    assert_eq!(floats("a == 1e-9"), [true]);
    assert_eq!(floats("a == 2f64"), [true]);
    assert_eq!(floats("a == 10"), [false]);
    assert_eq!(
        floats("a == 0xAB"),
        [false],
        "hex digits are not an exponent"
    );
    assert_eq!(
        floats("for i in 0..10 {}"),
        [false, false],
        "ranges are two ints"
    );
    assert_eq!(
        floats("1.max(2)"),
        [false, false],
        "method call on int literal"
    );
}

#[test]
fn allow_directive_inside_block_comment_spanning_lines() {
    let src =
        "/* preamble\n   lint:allow(determinism): documented exactness\n*/\nlet x = 1.0 == y;\n";
    let f = lex(src);
    assert!(f.allowed("determinism", 2));
    assert!(
        f.allowed("determinism", 3),
        "allow reaches the following line"
    );
}

#[test]
fn allow_text_inside_a_string_is_not_a_directive() {
    let src = r#"let s = "lint:allow(no-panic)"; x.unwrap()"#;
    let f = lex(src);
    assert!(
        !f.allowed("no-panic", 1),
        "directives live in comments, not strings"
    );
}

#[test]
fn raw_identifiers_and_byte_literals() {
    let src = r#"let r#type = b"bytes with unwrap()"; let b = b'x'; r2d2()"#;
    let idents = live_idents(src);
    assert_eq!(idents, ["let", "type", "let", "b", "r2d2"]);
}
