//! Fixture tests: every check is proven *live* — it fires on a fixture
//! workspace that violates its invariant — and every allow form is
//! proven to suppress. A check that silently stopped matching (lexer
//! regression, pattern typo) fails here, not in production.

use std::path::PathBuf;

use actuary_lint::{run_checks, Finding};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn violations() -> Vec<Finding> {
    run_checks(&fixture_root("violations"), None).expect("fixture workspace loads")
}

/// Asserts exactly one finding of `check` exists at `file`:`line`.
fn assert_fires(findings: &[Finding], check: &str, file: &str, line: u32) {
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.check == check && f.file == file && f.line == line)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one [{check}] at {file}:{line}; got {hits:?}\nall: {findings:#?}"
    );
}

#[test]
fn crate_dag_rejects_upward_edge() {
    // dse (layer 5) declaring report (layer 6): the exact edge PR 1 removed.
    assert_fires(
        &violations(),
        "crate-dag",
        "crates/actuary-dse/Cargo.toml",
        1,
    );
}

#[test]
fn crate_dag_rejects_same_layer_edge() {
    // scenario and report share layer 6; the sibling pair stays independent.
    assert_fires(
        &violations(),
        "crate-dag",
        "crates/actuary-scenario/Cargo.toml",
        1,
    );
}

#[test]
fn crate_dag_rejects_undeclared_reference() {
    // `use actuary_figures::…` with no matching Cargo.toml declaration.
    assert_fires(
        &violations(),
        "crate-dag",
        "crates/actuary-dse/src/lib.rs",
        2,
    );
}

#[test]
fn no_panic_rejects_unwrap_expect_and_panic() {
    let found = violations();
    let lib = "crates/actuary-scenario/src/lib.rs";
    assert_fires(&found, "no-panic", lib, 3); // .unwrap()
    assert_fires(&found, "no-panic", lib, 4); // .expect(…)
    assert_fires(&found, "no-panic", lib, 6); // panic!
}

#[test]
fn no_panic_skips_total_functions_and_test_code() {
    // unwrap_or / expect_line_end are not panicking operators, and the
    // unwraps inside #[cfg(test)] modules (nested included) are exempt.
    let extra: Vec<Finding> = violations()
        .into_iter()
        .filter(|f| f.check == "no-panic" && f.line > 6)
        .collect();
    assert!(extra.is_empty(), "unexpected no-panic findings: {extra:?}");
}

#[test]
fn single_serializer_rejects_defs_and_handrolled_rows() {
    let found = violations();
    let lib = "crates/actuary-dse/src/lib.rs";
    assert_fires(&found, "single-serializer", lib, 13); // fn to_csv
    assert_fires(&found, "single-serializer", lib, 15); // "{},{}" format row
    assert_fires(&found, "single-serializer", lib, 17); // .join(",")
}

#[test]
fn unit_suffix_rejects_bare_float_fields_and_scenario_keys() {
    let found = violations();
    assert_fires(
        &found,
        "unit-suffix",
        "crates/actuary-dse/src/lib.rs",
        8, // pub cost: f64
    );
    assert_fires(
        &found,
        "unit-suffix",
        "crates/actuary-scenario/src/lib.rs",
        14, // opt_f64("cluster")
    );
    // The compliant `area_mm2` field must NOT fire.
    assert!(
        !found
            .iter()
            .any(|f| f.check == "unit-suffix" && f.line == 9),
        "area_mm2 is compliant: {found:#?}"
    );
}

#[test]
fn determinism_rejects_time_hash_and_float_eq() {
    let found = violations();
    let lib = "crates/actuary-dse/src/lib.rs";
    assert_fires(&found, "determinism", lib, 3); // HashMap
    assert_fires(&found, "determinism", lib, 4); // Instant
    assert_fires(&found, "determinism", lib, 19); // cost == 0.0
                                                  // The #[cfg(test)] HashMap + exact compare are exempt.
    assert!(
        !found
            .iter()
            .any(|f| f.check == "determinism" && f.file == lib && f.line > 19),
        "test code must be exempt: {found:#?}"
    );
}

#[test]
fn determinism_clock_ban_spans_crates_but_spares_actuary_obs() {
    let found = violations();
    // actuary-cli is NOT a result crate, yet the clock ban fires there…
    assert_fires(&found, "determinism", "crates/actuary-cli/src/lib.rs", 3); // Instant
    let stray: Vec<&Finding> = found
        .iter()
        .filter(|f| {
            // …while its HashMap (a result-crate-only rule) stays silent,
            (f.file == "crates/actuary-cli/src/lib.rs" && f.line != 3)
                // and the approved clock crate produces no findings at all.
                || f.file.starts_with("crates/actuary-obs/")
        })
        .collect();
    assert!(stray.is_empty(), "clock scoping leaked: {stray:#?}");
}

#[test]
fn golden_header_rejects_undeclared_columns() {
    let found = violations();
    assert_fires(
        &found,
        "golden-header",
        "examples/scenarios/golden/drifted.csv",
        1,
    );
    // The JSON-lines golden's meta line is held to the same rule.
    assert_fires(
        &found,
        "golden-header",
        "examples/scenarios/golden-jsonl/drifted.jsonl",
        1,
    );
    // Only the phantom columns fire; declared_col is in the units crate.
    let drift: Vec<&Finding> = found
        .iter()
        .filter(|f| f.check == "golden-header")
        .collect();
    assert_eq!(drift.len(), 2, "{drift:?}");
    assert!(drift.iter().all(|f| f.message.contains("phantom")));
}

#[test]
fn every_check_fires_somewhere_in_the_violations_fixture() {
    // The master liveness gate: a check that goes silent fails here even
    // if the per-check assertions above are edited.
    let found = violations();
    for check in actuary_lint::CHECK_NAMES {
        assert!(
            found.iter().any(|f| f.check == *check),
            "check `{check}` produced no finding on the violations fixture"
        );
    }
}

#[test]
fn allow_directives_suppress_every_finding() {
    let found = run_checks(&fixture_root("allowed"), None).expect("fixture workspace loads");
    assert!(
        found.is_empty(),
        "allow directives must suppress all findings: {found:#?}"
    );
}

#[test]
fn single_check_selection_runs_only_that_check() {
    let found = run_checks(&fixture_root("violations"), Some(&["no-panic".to_string()]))
        .expect("fixture workspace loads");
    assert!(!found.is_empty());
    assert!(found.iter().all(|f| f.check == "no-panic"), "{found:#?}");
}
