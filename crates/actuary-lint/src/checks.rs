//! The six named invariant checks. Each walks the lexed workspace and
//! pushes [`Finding`]s; inline-allow filtering happens in the runner
//! ([`crate::run_checks`]), so every check reports unconditionally.

use std::fmt;
use std::fs;

use crate::config;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{CrateInfo, Role, SourceFile, Workspace};

/// One lint finding: a named check firing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The check that fired (e.g. `"no-panic"`).
    pub check: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (line 1 for whole-file findings such as manifest or
    /// CSV-header violations).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// All check names, in reporting order.
pub const CHECK_NAMES: &[&str] = &[
    "crate-dag",
    "no-panic",
    "single-serializer",
    "unit-suffix",
    "determinism",
    "golden-header",
];

/// Runs one named check over the workspace.
pub fn run_check(name: &str, ws: &Workspace, findings: &mut Vec<Finding>) {
    match name {
        "crate-dag" => crate_dag(ws, findings),
        "no-panic" => no_panic(ws, findings),
        "single-serializer" => single_serializer(ws, findings),
        "unit-suffix" => unit_suffix(ws, findings),
        "determinism" => determinism(ws, findings),
        "golden-header" => golden_header(ws, findings),
        other => unreachable!("unknown check `{other}` (CHECK_NAMES is the registry)"),
    }
}

/// True when this file's code at `tok` is production code for the
/// purposes of a production-only check.
fn is_production(file: &SourceFile, tok: &Token) -> bool {
    file.role == Role::Lib && !tok.in_test
}

// ---------------------------------------------------------------------
// crate-dag
// ---------------------------------------------------------------------

/// Enforces the crate layering DAG two ways: declared `[dependencies]`
/// must point strictly downward in [`config::LAYERS`], and every
/// `actuary_*` path reference in source must be backed by a declared
/// dependency (dev-dependencies only count in test code).
fn crate_dag(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if config::is_compat(&krate.dir) {
            continue;
        }
        let manifest = manifest_rel(krate);
        if krate.name == config::LINT_CRATE {
            for dep in krate.deps.iter().chain(&krate.dev_deps) {
                if config::layer_of(dep).is_some() || dep.starts_with("actuary-") {
                    findings.push(Finding {
                        check: "crate-dag",
                        file: manifest.clone(),
                        line: 1,
                        message: format!(
                            "`{}` must stay dependency-free (it enforces the DAG it \
                             cannot be part of), but declares `{dep}`",
                            krate.name
                        ),
                    });
                }
            }
            continue;
        }
        let Some(layer) = config::layer_of(&krate.name) else {
            findings.push(Finding {
                check: "crate-dag",
                file: manifest.clone(),
                line: 1,
                message: format!(
                    "crate `{}` is not in the layering table — add it to \
                     LAYERS in actuary-lint/src/config.rs at its layer",
                    krate.name
                ),
            });
            continue;
        };
        for dep in &krate.deps {
            if let Some(dep_layer) = config::layer_of(dep) {
                if dep_layer >= layer {
                    findings.push(Finding {
                        check: "crate-dag",
                        file: manifest.clone(),
                        line: 1,
                        message: format!(
                            "`{}` (layer {layer}) must not depend on `{dep}` \
                             (layer {dep_layer}): dependencies point strictly \
                             downward in units → yield/tech → model → arch → \
                             mc/dse → scenario/report → figures → cli",
                            krate.name
                        ),
                    });
                }
            }
        }
        // Source references: every `actuary_*` (or `chiplet_actuary`)
        // ident must be backed by a declaration.
        for file in &krate.files {
            for tok in &file.lexed.tokens {
                if tok.kind != TokenKind::Ident {
                    continue;
                }
                if !(tok.text.starts_with("actuary_") || tok.text == "chiplet_actuary") {
                    continue;
                }
                let referenced = tok.text.replace('_', "-");
                if referenced == krate.name {
                    continue; // integration tests referring to their own crate
                }
                let declared = if is_production(file, tok) {
                    krate.declares(&referenced)
                } else {
                    krate.declares(&referenced) || krate.declares_dev(&referenced)
                };
                if !declared {
                    findings.push(Finding {
                        check: "crate-dag",
                        file: file.rel.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}` references `{referenced}` without declaring it in {}",
                            krate.name, manifest
                        ),
                    });
                }
            }
        }
    }
}

fn manifest_rel(krate: &CrateInfo) -> String {
    if krate.dir.is_empty() {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", krate.dir)
    }
}

// ---------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------

/// Bans `.unwrap()`, `.expect(…)`, `panic!`, `todo!` and
/// `unimplemented!` outside test code in the configured panic-free
/// paths (the serving path and the scenario parser).
fn no_panic(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            if !config::PANIC_FREE_PATHS
                .iter()
                .any(|p| config::path_matches(&file.rel, p))
            {
                continue;
            }
            let toks = &file.lexed.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if tok.kind != TokenKind::Ident || !is_production(file, tok) {
                    continue;
                }
                let prev = i.checked_sub(1).map(|j| &toks[j]);
                let next = toks.get(i + 1);
                let called = matches!(next, Some(n) if n.kind == TokenKind::Op && n.text == "(");
                let method = matches!(prev, Some(p) if p.kind == TokenKind::Op && p.text == ".");
                let bang = matches!(next, Some(n) if n.kind == TokenKind::Op && n.text == "!");
                let hit = match tok.text.as_str() {
                    "unwrap" | "expect" => method && called,
                    "panic" | "todo" | "unimplemented" => bang,
                    _ => false,
                };
                if hit {
                    findings.push(Finding {
                        check: "no-panic",
                        file: file.rel.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}` in a panic-free path — return an error instead \
                             (the serve-path catch_unwind backstop is not a license)",
                            tok.text
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// single-serializer
// ---------------------------------------------------------------------

/// Outside the serializer crates, bans defining `to_csv`/`write_csv`
/// functions and the telltale shapes of hand-rolled CSV row building
/// (format strings containing `},{`, `.join(",")`). Everything tabular
/// goes through `actuary_report::Artifact`.
fn single_serializer(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if config::is_compat(&krate.dir)
            || config::SERIALIZER_CRATES.contains(&krate.name.as_str())
            || krate.name == config::LINT_CRATE
        {
            // The lint's own sources describe the banned patterns in
            // message strings; it emits no CSV.
            continue;
        }
        for file in &krate.files {
            let toks = &file.lexed.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if !is_production(file, tok) {
                    continue;
                }
                match tok.kind {
                    TokenKind::Ident if tok.text == "fn" => {
                        if let Some(name) = toks.get(i + 1) {
                            let n = name.text.as_str();
                            let csv_def = n == "to_csv"
                                || n.starts_with("to_csv_")
                                || n.ends_with("_to_csv")
                                || n == "write_csv"
                                || (n.starts_with("write_") && n.ends_with("_csv"));
                            if csv_def {
                                findings.push(Finding {
                                    check: "single-serializer",
                                    file: file.rel.clone(),
                                    line: name.line,
                                    message: format!(
                                        "`fn {n}` defines CSV serialization outside \
                                         {:?} — emit an actuary_report::Artifact instead",
                                        config::SERIALIZER_CRATES
                                    ),
                                });
                            }
                        }
                    }
                    TokenKind::Str if tok.text.contains("},{") => {
                        findings.push(Finding {
                            check: "single-serializer",
                            file: file.rel.clone(),
                            line: tok.line,
                            message: "format string builds CSV rows by hand (`},{`) — \
                                      emit an actuary_report::Artifact instead"
                                .to_string(),
                        });
                    }
                    TokenKind::Ident if tok.text == "join" => {
                        let method = i
                            .checked_sub(1)
                            .is_some_and(|j| toks[j].kind == TokenKind::Op && toks[j].text == ".");
                        let comma_arg = matches!(
                            (toks.get(i + 1), toks.get(i + 2)),
                            (Some(paren), Some(arg))
                                if paren.text == "("
                                    && arg.kind == TokenKind::Str
                                    && arg.text == ","
                        );
                        if method && comma_arg {
                            findings.push(Finding {
                                check: "single-serializer",
                                file: file.rel.clone(),
                                line: tok.line,
                                message: "`.join(\",\")` builds CSV rows by hand — emit \
                                          an actuary_report::Artifact instead"
                                    .to_string(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// unit-suffix
// ---------------------------------------------------------------------

/// `pub` `f64` (and `Option<f64>`) struct fields, and scalar float
/// scenario keys, must end in an allowlisted unit suffix — a bare
/// `cost: f64` is exactly how the unit bugs PR 2 fixed slip in.
fn unit_suffix(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if config::is_compat(&krate.dir) || krate.name == config::LINT_CRATE {
            continue;
        }
        for file in &krate.files {
            let toks = &file.lexed.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if tok.kind != TokenKind::Ident || !is_production(file, tok) {
                    continue;
                }
                if tok.text == "pub" {
                    if let Some((name, name_line)) = pub_f64_field(toks, i) {
                        if !has_unit_suffix(name) {
                            findings.push(Finding {
                                check: "unit-suffix",
                                file: file.rel.clone(),
                                line: name_line,
                                message: format!(
                                    "pub f64 field `{name}` has no unit suffix \
                                     (allowed: {})",
                                    config::UNIT_SUFFIXES.join(", ")
                                ),
                            });
                        }
                    }
                }
                // Scenario float keys: `opt_f64("key")` / `req_f64("key")`.
                if (tok.text == "opt_f64" || tok.text == "req_f64")
                    && krate.name == "actuary-scenario"
                {
                    if let (Some(paren), Some(key)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if paren.text == "("
                            && key.kind == TokenKind::Str
                            && !has_unit_suffix(&key.text)
                        {
                            findings.push(Finding {
                                check: "unit-suffix",
                                file: file.rel.clone(),
                                line: key.line,
                                message: format!(
                                    "scenario float key `{}` has no unit suffix (allowed: {})",
                                    key.text,
                                    config::UNIT_SUFFIXES.join(", ")
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// If the tokens at `i` (an ident `pub`) start a `pub [vis] name:
/// f64`-or-`Option<f64>` struct field, returns the field name and line.
fn pub_f64_field(toks: &[Token], i: usize) -> Option<(&str, u32)> {
    let mut j = i + 1;
    // Skip a visibility qualifier `(crate)` / `(super)` / `(in path)`.
    if toks.get(j).is_some_and(|t| t.text == "(") {
        let mut depth = 0;
        while let Some(t) = toks.get(j) {
            if t.text == "(" {
                depth += 1;
            }
            if t.text == ")" {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let name = toks.get(j)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    if toks.get(j + 1).is_none_or(|t| t.text != ":") {
        return None;
    }
    let ty = toks.get(j + 2)?;
    let end = if ty.kind == TokenKind::Ident && ty.text == "f64" {
        j + 3
    } else if ty.kind == TokenKind::Ident
        && ty.text == "Option"
        && toks.get(j + 3).is_some_and(|t| t.text == "<")
        && toks.get(j + 4).is_some_and(|t| t.text == "f64")
        && toks.get(j + 5).is_some_and(|t| t.text == ">")
    {
        j + 6
    } else {
        return None;
    };
    // A struct field ends with `,` or `}` — `pub fn f() -> f64 {` and
    // signatures never match this shape.
    if !toks
        .get(end)
        .is_some_and(|t| t.text == "," || t.text == "}")
    {
        return None;
    }
    Some((name.text.as_str(), name.line))
}

fn has_unit_suffix(name: &str) -> bool {
    config::UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// Determinism has two scopes. Wall-clock time sources (`SystemTime`,
/// `Instant`) are banned in *every* non-compat crate except
/// [`config::CLOCK_CRATE`] (the observability layer owns the clock seam)
/// and [`config::CLOCK_EXEMPT_CRATES`] (the bench harness times from
/// outside). Iteration-order-unstable collections (`HashMap`,
/// `HashSet`) and float `==`/`!=` against a literal outside the
/// approved unit-type modules stay scoped to result-producing crates.
/// Byte-identical grids across thread counts is a pinned guarantee;
/// these are the ways it breaks.
fn determinism(ws: &Workspace, findings: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if config::is_compat(&krate.dir) {
            continue;
        }
        let result_crate = config::RESULT_CRATES.contains(&krate.name.as_str());
        let clock_banned = krate.name != config::CLOCK_CRATE
            && !config::CLOCK_EXEMPT_CRATES.contains(&krate.name.as_str());
        if !result_crate && !clock_banned {
            continue;
        }
        for file in &krate.files {
            let float_eq_approved = config::FLOAT_EQ_APPROVED
                .iter()
                .any(|p| config::path_matches(&file.rel, p));
            let toks = &file.lexed.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if !is_production(file, tok) {
                    continue;
                }
                if tok.kind == TokenKind::Ident {
                    let banned = match tok.text.as_str() {
                        "SystemTime" | "Instant" if clock_banned => Some(
                            "wall-clock time outside the observability layer — go \
                             through actuary_obs::clock (Tick/Stopwatch) instead",
                        ),
                        "HashMap" | "HashSet" if result_crate => Some(
                            "iteration order is nondeterministic in a result-producing \
                             crate — use BTreeMap/BTreeSet or a Vec",
                        ),
                        _ => None,
                    };
                    if let Some(why) = banned {
                        findings.push(Finding {
                            check: "determinism",
                            file: file.rel.clone(),
                            line: tok.line,
                            message: format!("`{}`: {why}", tok.text),
                        });
                    }
                }
                if result_crate
                    && tok.kind == TokenKind::Op
                    && (tok.text == "==" || tok.text == "!=")
                    && !float_eq_approved
                {
                    let float_operand = i.checked_sub(1).is_some_and(|j| toks[j].is_float())
                        || toks.get(i + 1).is_some_and(|t| t.is_float());
                    if float_operand {
                        findings.push(Finding {
                            check: "determinism",
                            file: file.rel.clone(),
                            line: tok.line,
                            message: format!(
                                "float `{}` against a literal — compare with a \
                                 tolerance, or move the exact semantics into \
                                 actuary-units",
                                tok.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// golden-header
// ---------------------------------------------------------------------

/// Every column of every `examples/scenarios/golden/*.csv` header — and
/// every column named in the meta lines of every
/// `examples/scenarios/golden-jsonl/*.jsonl` — must appear as a string
/// literal in production library source: a renamed schema column with a
/// stale golden (or vice versa) fails here instead of silently shipping
/// drifted output. The JSON-lines row objects are keyed by exactly those
/// columns, so checking the meta line covers the row field names too.
fn golden_header(ws: &Workspace, findings: &mut Vec<Finding>) {
    // All string literals declared in production library code.
    let mut declared: Vec<&str> = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            for tok in &file.lexed.tokens {
                if tok.kind == TokenKind::Str && is_production(file, tok) {
                    declared.push(tok.text.as_str());
                }
            }
        }
    }
    declared.sort_unstable();
    let rel_of = |path: &std::path::Path| {
        path.strip_prefix(&ws.root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    };

    for csv in goldens(&ws.root.join(config::GOLDEN_DIR), "csv") {
        let rel = rel_of(&csv);
        let Ok(text) = fs::read_to_string(&csv) else {
            continue;
        };
        let Some(header) = text.lines().next() else {
            continue;
        };
        for column in header.split(',') {
            if declared.binary_search(&column).is_err() {
                findings.push(Finding {
                    check: "golden-header",
                    file: rel.clone(),
                    line: 1,
                    message: format!(
                        "header column `{column}` is not declared as a string \
                         literal in any library source — the golden has drifted \
                         from the schema (or the column needs declaring)",
                    ),
                });
            }
        }
    }

    for jsonl in goldens(&ws.root.join(config::GOLDEN_JSONL_DIR), "jsonl") {
        let rel = rel_of(&jsonl);
        let Ok(text) = fs::read_to_string(&jsonl) else {
            continue;
        };
        for (idx, line) in text.lines().enumerate() {
            for column in meta_columns(line) {
                if declared.binary_search(&column).is_err() {
                    findings.push(Finding {
                        check: "golden-header",
                        file: rel.clone(),
                        line: idx as u32 + 1,
                        message: format!(
                            "meta-line column `{column}` is not declared as a \
                             string literal in any library source — the JSON-lines \
                             golden has drifted from the schema (or the column \
                             needs declaring)",
                        ),
                    });
                }
            }
        }
    }
}

/// The golden files with `extension` under `dir`, sorted; empty when the
/// directory does not exist.
fn goldens(dir: &std::path::Path, extension: &str) -> Vec<std::path::PathBuf> {
    let mut files: Vec<std::path::PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == extension))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    files
}

/// Column names from a JSON-lines artifact meta line
/// (`{"artifact":…,"kind":…,"columns":[…]}`); empty for row lines, which
/// carry no `columns` array.
fn meta_columns(line: &str) -> Vec<&str> {
    let Some(start) = line.find("\"columns\":[") else {
        return Vec::new();
    };
    let rest = &line[start + "\"columns\":[".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|cell| {
            cell.trim()
                .strip_prefix('"')
                .and_then(|c| c.strip_suffix('"'))
        })
        .collect()
}
