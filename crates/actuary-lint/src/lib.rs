//! **actuary-lint** — the workspace's own static-analysis pass.
//!
//! The cost model's value is *trustworthy* numbers, and this repo's
//! failure mode has always been silent wrong answers. Several
//! load-bearing invariants — one CSV serializer, byte-identical grids
//! across thread counts, the crate layering DAG, unit-suffixed cost
//! fields — were historically enforced by greps quoted in CHANGES.md or
//! by convention. This crate makes them mechanical: a std-only binary
//! (no dependencies, not even internal ones — the linter sits outside
//! the DAG it enforces) that lexes every workspace source file and runs
//! six named checks:
//!
//! | check | invariant |
//! |---|---|
//! | `crate-dag` | `[dependencies]` point strictly downward in the layer order; every `actuary_*` reference is declared |
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` outside tests in the serving path and scenario parser |
//! | `single-serializer` | no CSV serialization defined outside `actuary-units`/`actuary-report` |
//! | `unit-suffix` | `pub` `f64` fields and scenario float keys end in a unit suffix (`_usd`, `_mm2`, …) |
//! | `determinism` | no `SystemTime`/`Instant` outside `actuary-obs` (bench exempt); no `HashMap`/`HashSet` or float `==` against literals in result-producing crates |
//! | `golden-header` | every golden CSV header / JSON-lines meta column is declared in library source |
//!
//! A finding prints as `file:line: [check] message` and fails the run.
//! To exempt one line, put `// lint:allow(check-name): reason` on the
//! line or the line above; `// lint:allow-file(check-name)` exempts a
//! file. Where an invariant applies at all (panic-free paths, the layer
//! table, the suffix vocabulary) lives in [`config`] as reviewed,
//! diffable constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checks;
pub mod config;
pub mod lexer;
pub mod workspace;

pub use checks::{run_check, Finding, CHECK_NAMES};
pub use workspace::{find_root, Workspace};

use std::io;
use std::path::Path;

/// Loads the workspace at `root` and runs the named checks (all of
/// [`CHECK_NAMES`] when `only` is `None`), returning surviving findings
/// after inline-allow filtering, sorted by file, line and check.
pub fn run_checks(root: &Path, only: Option<&[String]>) -> io::Result<Vec<Finding>> {
    let ws = Workspace::load(root)?;
    let mut findings = Vec::new();
    for check in CHECK_NAMES {
        let selected = match only {
            None => true,
            Some(names) => names.iter().any(|n| n == check),
        };
        if selected {
            checks::run_check(check, &ws, &mut findings);
        }
    }
    // Inline-allow filtering: a finding in a lexed file is dropped when
    // an allow directive for its check covers its line.
    findings.retain(|f| {
        for krate in &ws.crates {
            for file in &krate.files {
                if file.rel == f.file {
                    return !file.lexed.allowed(f.check, f.line);
                }
            }
        }
        true // non-Rust findings (manifests, CSVs) have no inline allows
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });
    findings.dedup();
    Ok(findings)
}
