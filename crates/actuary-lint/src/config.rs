//! Project-invariant configuration: the crate layering, panic-free
//! paths, unit-suffix vocabulary and per-check scoping that the checks
//! in [`crate::checks`] enforce.
//!
//! This file *is* the allowlist of last resort: inline
//! `// lint:allow(check)` comments handle single findings, while the
//! constants here define where each invariant applies at all. Changing a
//! constant is a reviewed, diffable act — exactly the property the
//! invariants need.

/// The crate layering DAG, bottom (0) to top. A crate may only declare
/// `[dependencies]` on crates with a strictly lower layer — so both
/// upward edges (dse → report) and same-layer edges (scenario ↔ report)
/// are rejected, keeping the sibling pairs independent.
pub const LAYERS: &[(&str, u32)] = &[
    ("actuary-obs", 0),
    ("actuary-units", 0),
    ("actuary-yield", 1),
    ("actuary-tech", 2),
    ("actuary-model", 3),
    ("actuary-arch", 4),
    ("actuary-mc", 5),
    ("actuary-dse", 5),
    ("actuary-scenario", 6),
    ("actuary-report", 6),
    ("actuary-figures", 7),
    ("actuary-cli", 8),
    ("chiplet-actuary", 8),
    ("bench", 8),
];

/// The layer of `name`, if it is an internal layered crate.
pub fn layer_of(name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, layer)| *layer)
}

/// The linter itself: must depend on nothing internal (it sits outside
/// the DAG it enforces).
pub const LINT_CRATE: &str = "actuary-lint";

/// Paths (workspace-relative, `/`-separated; a trailing `/` means the
/// whole subtree) where panicking operators are banned outside test
/// code. The server's `catch_unwind` backstop is not a license to panic,
/// and the scenario crate parses untrusted input end to end.
pub const PANIC_FREE_PATHS: &[&str] = &[
    "crates/actuary-cli/src/server.rs",
    "crates/actuary-scenario/src/",
];

/// Crates allowed to define CSV serialization (everything else must go
/// through `actuary_report::Artifact`). `actuary-units` hosts the one
/// writer (`write_csv_row`) for DAG reasons; `actuary-report` is its
/// canonical re-export surface plus the legacy `Table::to_csv`.
pub const SERIALIZER_CRATES: &[&str] = &["actuary-units", "actuary-report"];

/// Result-producing crates: everything whose output feeds grids, CSVs or
/// served responses. Inside these, wall-clock time sources and
/// iteration-order-unstable collections are banned (byte-identical
/// output across thread counts is a pinned guarantee), as are float
/// `==`/`!=` against literals outside the approved modules.
pub const RESULT_CRATES: &[&str] = &[
    "actuary-units",
    "actuary-yield",
    "actuary-tech",
    "actuary-model",
    "actuary-arch",
    "actuary-mc",
    "actuary-dse",
    "actuary-scenario",
    "actuary-report",
    "actuary-figures",
    "chiplet-actuary",
];

/// The one crate approved to touch wall-clock time sources
/// (`Instant`/`SystemTime`): the observability layer anchors its
/// monotonic `Tick` and log timestamps in `actuary_obs::clock` so every
/// other crate reads time through an auditable seam — or not at all.
pub const CLOCK_CRATE: &str = "actuary-obs";

/// Crates exempt from the clock ban without being the clock owner: the
/// benchmark harness times the engine from outside by definition, and
/// its numbers never feed a result artifact.
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// Modules where float `==`/`!=` against a literal is approved: the
/// unit value types own their exact-zero semantics (`Money::is_zero`
/// and friends are the single place exactness is intended).
pub const FLOAT_EQ_APPROVED: &[&str] = &["crates/actuary-units/src/"];

/// Unit suffixes a `pub` `f64` struct field or scenario float key may
/// end with. The vocabulary is the project's unit system: money, areas,
/// lengths, probabilities/ratios and time.
pub const UNIT_SUFFIXES: &[&str] = &[
    "_usd",
    "_musd",
    "_mm2",
    "_mm",
    "_nm",
    "_frac",
    "_fraction",
    "_factor",
    "_yield",
    "_density",
    "_norm",
    "_months",
    "_per_mm2",
    "_per_unit",
];

/// Workspace-relative directory holding the golden CSVs whose header
/// columns must be declared somewhere in (non-test, library) source.
pub const GOLDEN_DIR: &str = "examples/scenarios/golden";

/// Workspace-relative directory holding the golden JSON-lines artifacts
/// (the `Accept: application/json` serving encoding); the column names in
/// their meta lines are held to the same declared-literal rule as CSV
/// headers. A separate directory so `diff -r` over [`GOLDEN_DIR`] in the
/// scenario smoke test keeps comparing only what `actuary run` emits.
pub const GOLDEN_JSONL_DIR: &str = "examples/scenarios/golden-jsonl";

/// True when `rel` (workspace-relative path) is under a compat shim —
/// compat crates mirror external APIs and are exempt from project
/// conventions.
pub fn is_compat(dir: &str) -> bool {
    dir.starts_with("crates/compat")
}

/// True when `rel` matches `path` (exact file, or prefix when `path`
/// ends with `/`).
pub fn path_matches(rel: &str, path: &str) -> bool {
    if path.ends_with('/') {
        rel.starts_with(path)
    } else {
        rel == path
    }
}
