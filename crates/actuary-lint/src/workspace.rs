//! Workspace discovery: members from the root manifest, per-crate
//! dependency declarations from each member's `Cargo.toml`, and every
//! Rust source file lexed once up front.
//!
//! The manifest scanning is deliberately minimal — section headers,
//! `name = "..."`, dependency keys and a `members = [...]` array are the
//! only constructs the workspace's own manifests use. It is not a TOML
//! parser and does not need to be one: malformed manifests fail `cargo`
//! itself long before they reach the lint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, LexedFile};

/// Where a source file lives within its crate — checks exempt non-library
/// targets (tests, benches, examples) from production-only invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/` — production code.
    Lib,
    /// `tests/`, `benches/` or `examples/` — test-adjacent code.
    TestBenchExample,
}

/// One lexed Rust source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated (stable across
    /// platforms for findings and fixtures).
    pub rel: String,
    /// Target kind (see [`Role`]).
    pub role: Role,
    /// The lexed content.
    pub lexed: LexedFile,
}

/// One workspace member crate.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name as declared in `[package] name`.
    pub name: String,
    /// Member directory relative to the workspace root (empty for the
    /// root package itself).
    pub dir: String,
    /// `[dependencies]` keys.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` + `[build-dependencies]` keys.
    pub dev_deps: Vec<String>,
    /// All lexed source files of this crate.
    pub files: Vec<SourceFile>,
}

impl CrateInfo {
    /// True when `dep` is declared as a normal dependency.
    pub fn declares(&self, dep: &str) -> bool {
        self.deps.iter().any(|d| d == dep)
    }

    /// True when `dep` is declared as a dev/build dependency.
    pub fn declares_dev(&self, dep: &str) -> bool {
        self.dev_deps.iter().any(|d| d == dep)
    }
}

/// The whole workspace, ready for checks.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All member crates (including the root package), sorted by name.
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// Loads the workspace rooted at `root` (a directory whose
    /// `Cargo.toml` declares `[workspace]`).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let manifest_path = root.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)?;
        let mut member_dirs = parse_members(&manifest);
        member_dirs.sort();
        member_dirs.dedup();

        let mut crates = Vec::new();
        // The root manifest may also be a package (the facade crate).
        if let Some(name) = parse_package_name(&manifest) {
            crates.push(load_crate(root, "", &name, &manifest)?);
        }
        for dir in &member_dirs {
            let member_manifest_path = root.join(dir).join("Cargo.toml");
            let member_manifest = fs::read_to_string(&member_manifest_path)?;
            let name = parse_package_name(&member_manifest).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: missing [package] name", member_manifest_path.display()),
                )
            })?;
            crates.push(load_crate(root, dir, &name, &member_manifest)?);
        }
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
        })
    }

    /// The crate named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// contains a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if section_names(&text).any(|s| s == "workspace") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn load_crate(root: &Path, dir: &str, name: &str, manifest: &str) -> io::Result<CrateInfo> {
    let (deps, dev_deps) = parse_deps(manifest);
    let crate_dir = if dir.is_empty() {
        root.to_path_buf()
    } else {
        root.join(dir)
    };
    let mut files = Vec::new();
    for (sub, role) in [
        ("src", Role::Lib),
        ("tests", Role::TestBenchExample),
        ("benches", Role::TestBenchExample),
        ("examples", Role::TestBenchExample),
    ] {
        let target_dir = crate_dir.join(sub);
        if target_dir.is_dir() {
            collect_rs(&target_dir, role, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(CrateInfo {
        name: name.to_string(),
        dir: dir.to_string(),
        deps,
        dev_deps,
        files,
    })
}

/// Recursively collects and lexes `.rs` files, skipping `fixtures/` and
/// `target/` subtrees (fixture files intentionally violate invariants).
fn collect_rs(dir: &Path, role: Role, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if file_name == "fixtures" || file_name == "target" {
                continue;
            }
            collect_rs(&path, role, root, out)?;
        } else if file_name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel,
                role,
                lexed: lex(&text),
            });
        }
    }
    Ok(())
}

/// Iterates `[section]` / `[[section]]` header names in a manifest.
fn section_names(manifest: &str) -> impl Iterator<Item = &str> {
    manifest.lines().filter_map(|line| {
        let line = line.trim();
        let inner = line.strip_prefix('[')?.strip_suffix(']')?;
        Some(inner.trim_matches('[').trim_matches(']').trim())
    })
}

/// Extracts `name = "..."` from the `[package]` section.
fn parse_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Extracts dependency keys: `[dependencies]` vs `[dev-dependencies]` +
/// `[build-dependencies]` (both count as dev for layering purposes —
/// neither ships in the library).
fn parse_deps(manifest: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum Section {
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            let name = line.trim_matches(['[', ']']);
            section = match name {
                "dependencies" => Section::Deps,
                "dev-dependencies" | "build-dependencies" => Section::DevDeps,
                // Inline target/feature-specific dep tables would land in
                // Other; the workspace doesn't use them.
                _ => Section::Other,
            };
            continue;
        }
        if section == Section::Other || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"');
            // `foo.workspace = true` dotted form: key is before the dot.
            let key = key.split('.').next().unwrap_or(key);
            let target = match section {
                Section::Deps => &mut deps,
                _ => &mut dev_deps,
            };
            target.push(key.to_string());
        }
    }
    (deps, dev_deps)
}

/// Extracts the `members = [...]` array from the `[workspace]` section.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') && !in_members {
            in_workspace = line == "[workspace]";
            continue;
        }
        if in_workspace {
            if in_members {
                if line.starts_with(']') {
                    in_members = false;
                    continue;
                }
                for piece in line.split(',') {
                    let piece = piece.trim().trim_matches('"');
                    if !piece.is_empty() && !piece.starts_with('#') {
                        members.push(piece.to_string());
                    }
                }
            } else if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(array) = rest.strip_prefix('=') {
                    let array = array.trim();
                    if let Some(inline) = array.strip_prefix('[') {
                        if let Some(end) = inline.find(']') {
                            for piece in inline[..end].split(',') {
                                let piece = piece.trim().trim_matches('"');
                                if !piece.is_empty() {
                                    members.push(piece.to_string());
                                }
                            }
                        } else {
                            in_members = true;
                            for piece in inline.split(',') {
                                let piece = piece.trim().trim_matches('"');
                                if !piece.is_empty() {
                                    members.push(piece.to_string());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
[workspace]
members = [
    "crates/a",
    "crates/b", # trailing comment
]

[package]
name = "root-pkg"

[dependencies]
actuary-units = { workspace = true }
serde.workspace = true

[dev-dependencies]
proptest = { workspace = true }
"#;

    #[test]
    fn members_and_package_name() {
        assert_eq!(parse_members(MANIFEST), ["crates/a", "crates/b"]);
        assert_eq!(parse_package_name(MANIFEST).as_deref(), Some("root-pkg"));
    }

    #[test]
    fn deps_split_by_section_and_dotted_keys_work() {
        let (deps, dev) = parse_deps(MANIFEST);
        assert_eq!(deps, ["actuary-units", "serde"]);
        assert_eq!(dev, ["proptest"]);
    }

    #[test]
    fn single_line_members_array() {
        let m = "[workspace]\nmembers = [\"x\", \"y\"]\n";
        assert_eq!(parse_members(m), ["x", "y"]);
    }
}
