//! `actuary-lint` binary: run the workspace invariant checks and fail
//! on any finding.
//!
//! ```text
//! actuary-lint [--root DIR] [--check NAME]... [--list]
//! ```
//!
//! With no flags, lints the workspace containing the current directory.
//! Exit status: 0 clean, 1 findings, 2 usage/io error.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use actuary_lint::{find_root, run_checks, CHECK_NAMES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--check" => match args.next() {
                Some(name) => {
                    if !CHECK_NAMES.contains(&name.as_str()) {
                        return usage(&format!(
                            "unknown check `{name}` (available: {})",
                            CHECK_NAMES.join(", ")
                        ));
                    }
                    only.push(name);
                }
                None => return usage("--check needs a check name"),
            },
            "--list" => {
                for name in CHECK_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "actuary-lint [--root DIR] [--check NAME]... [--list]\n\n\
                     Enforces the workspace invariants ({}).\n\
                     Exempt a line with `// lint:allow(check-name): reason` on the same\n\
                     or preceding line; `// lint:allow-file(check-name)` exempts a file.",
                    CHECK_NAMES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("actuary-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "actuary-lint: no workspace root found above {} \
                         (pass --root DIR)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let selection = if only.is_empty() {
        None
    } else {
        Some(&only[..])
    };
    match run_checks(&root, selection) {
        Ok(findings) if findings.is_empty() => {
            let ran: Vec<&str> = match selection {
                None => CHECK_NAMES.to_vec(),
                Some(names) => names.iter().map(|s| s.as_str()).collect(),
            };
            println!(
                "actuary-lint: clean ({} check{} over {})",
                ran.len(),
                if ran.len() == 1 { "" } else { "s" },
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "actuary-lint: {} finding{} — exempt a line with \
                 `// lint:allow(check-name): reason`, or fix it",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("actuary-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!(
        "actuary-lint: {message}\nusage: actuary-lint [--root DIR] [--check NAME]... [--list]"
    );
    ExitCode::from(2)
}
