//! A small Rust lexer: just enough tokenization for reliable *syntactic*
//! invariant checks.
//!
//! The lexer understands the constructs that defeat naive grepping —
//! line comments, nested block comments, string/raw-string/byte-string
//! and char literals (vs lifetimes), numeric literals — and two pieces of
//! structure the checks need:
//!
//! - **test regions**: tokens inside a `#[cfg(test)]` (or `#[test]`) item
//!   body are flagged [`Token::in_test`], so production-only checks skip
//!   test code without being fooled by nesting;
//! - **allow directives**: a comment containing `lint:allow(check-name)`
//!   exempts findings of that check on the same or the following line;
//!   `lint:allow-file(check-name)` exempts the whole file.
//!
//! It is *not* a parser: it never builds an AST, so checks are phrased
//! over token patterns. That is the right trade for a lint that must stay
//! std-only and fast, and the fixture tests pin exactly which patterns
//! each check recognizes.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `cfg`, ...). Raw
    /// identifiers (`r#type`) are stored without the `r#` prefix.
    Ident,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). The
    /// token text is the *inner* source text, uncooked (escapes are not
    /// processed).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`), distinguished from char literals.
    Lifetime,
    /// A numeric literal. [`Token::is_float`] tells integers and floats
    /// apart.
    Num,
    /// An operator or punctuation token; multi-char operators that matter
    /// for disambiguation (`==`, `!=`, `::`, `..`, `->`, `=>`, ...) are
    /// single tokens.
    Op,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stored per kind).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]`/`#[test]` item
    /// body — test-only code the production checks must skip.
    pub in_test: bool,
}

impl Token {
    /// True for numeric literals that are floats (`1.0`, `1e-9`, `2f64`).
    pub fn is_float(&self) -> bool {
        if self.kind != TokenKind::Num {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.ends_with("f32")
            || t.ends_with("f64")
            || t.bytes().any(|b| b == b'e' || b == b'E')
    }
}

/// An `lint:allow(...)` directive found in a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The check name inside the parentheses.
    pub check: String,
    /// 1-based line the directive appears on (`0` for file-scope allows).
    pub line: u32,
    /// True for `lint:allow-file(...)` (whole-file exemption).
    pub file_scope: bool,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    /// All significant tokens, in source order.
    pub tokens: Vec<Token>,
    /// All allow directives found in comments.
    pub allows: Vec<Allow>,
}

impl LexedFile {
    /// True when a finding of `check` at `line` is exempted by an allow
    /// directive (file-scope, same line, or the immediately preceding
    /// line — supporting both trailing and standalone allow comments).
    pub fn allowed(&self, check: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.check == check && (a.file_scope || a.line == line || a.line + 1 == line))
    }
}

/// Lexes `source`, producing tokens (with test regions marked) and allow
/// directives. Never fails: unterminated constructs simply end at EOF —
/// the real compiler is the arbiter of validity, the lexer only needs to
/// not mis-classify what follows valid code.
pub fn lex(source: &str) -> LexedFile {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();
    let mut allows = Vec::new();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                let text = cur.consume_line_comment();
                scan_allow(&text, line, &mut allows);
            }
            '/' if cur.peek2() == Some('*') => {
                cur.consume_block_comment(&mut allows);
            }
            'r' if matches!(cur.peek2(), Some('"') | Some('#')) && cur.raw_string_ahead(1) => {
                let inner = cur.consume_raw_string();
                tokens.push(token(TokenKind::Str, inner, line));
            }
            'b' if cur.peek2() == Some('"') => {
                cur.bump();
                let inner = cur.consume_quoted_string();
                tokens.push(token(TokenKind::Str, inner, line));
            }
            'b' if cur.peek2() == Some('r') && cur.raw_string_ahead(2) => {
                cur.bump();
                let inner = cur.consume_raw_string();
                tokens.push(token(TokenKind::Str, inner, line));
            }
            'b' if cur.peek2() == Some('\'') => {
                cur.bump();
                let inner = cur.consume_char_literal();
                tokens.push(token(TokenKind::Char, inner, line));
            }
            'r' if cur.peek2() == Some('#') && is_ident_start(cur.peek_at(2)) => {
                // Raw identifier r#type: strip the prefix, keep the name.
                cur.bump();
                cur.bump();
                let name = cur.consume_ident();
                tokens.push(token(TokenKind::Ident, name, line));
            }
            _ if is_ident_start(Some(c)) => {
                let name = cur.consume_ident();
                tokens.push(token(TokenKind::Ident, name, line));
            }
            _ if c.is_ascii_digit() => {
                let num = cur.consume_number();
                tokens.push(token(TokenKind::Num, num, line));
            }
            '"' => {
                let inner = cur.consume_quoted_string();
                tokens.push(token(TokenKind::Str, inner, line));
            }
            '\'' => {
                let (kind, text) = cur.consume_quote_or_lifetime();
                tokens.push(token(kind, text, line));
            }
            _ => {
                let op = cur.consume_op();
                tokens.push(token(TokenKind::Op, op, line));
            }
        }
    }

    mark_test_regions(&mut tokens);
    LexedFile { tokens, allows }
}

fn token(kind: TokenKind, text: String, line: u32) -> Token {
    Token {
        kind,
        text,
        line,
        in_test: false,
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    matches!(c, Some(c) if c == '_' || c.is_alphabetic())
}

/// Extracts `lint:allow(name)` / `lint:allow-file(name)` directives from
/// one comment's text. Multiple directives per comment are honored.
fn scan_allow(text: &str, line: u32, allows: &mut Vec<Allow>) {
    let mut offset_line = line;
    for (i, comment_line) in text.split('\n').enumerate() {
        if i > 0 {
            offset_line += 1;
        }
        let mut rest = comment_line;
        while let Some(pos) = rest.find("lint:allow") {
            rest = &rest[pos + "lint:allow".len()..];
            let file_scope = rest.starts_with("-file");
            let after = if file_scope {
                &rest["-file".len()..]
            } else {
                rest
            };
            if let Some(stripped) = after.strip_prefix('(') {
                if let Some(end) = stripped.find(')') {
                    allows.push(Allow {
                        check: stripped[..end].trim().to_string(),
                        line: if file_scope { 0 } else { offset_line },
                        file_scope,
                    });
                    rest = &stripped[end + 1..];
                    continue;
                }
            }
            break;
        }
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` item bodies.
///
/// Recognizes the attribute token sequences `# [ cfg ( test ) ]` and
/// `# [ test ]`; once seen, the next `{` at or below the attribute's
/// brace depth opens a test region that closes with its matching `}`.
/// A `;` before any `{` (e.g. `#[cfg(test)] mod tests;`) cancels the
/// pending region. Regions nest: anything inside an open region is test
/// code regardless of further attributes.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut depth: i32 = 0;
    let mut open_regions: Vec<i32> = Vec::new();
    let mut pending: Option<i32> = None;

    let mut i = 0;
    while i < tokens.len() {
        // Attribute detection looks ahead without consuming.
        if tokens[i].kind == TokenKind::Op && tokens[i].text == "#" && pending.is_none() {
            if let Some(len) = test_attr_len(&tokens[i..]) {
                pending = Some(depth);
                for t in tokens.iter_mut().skip(i).take(len) {
                    t.in_test = true;
                }
                i += len;
                continue;
            }
        }
        let is_open = tokens[i].kind == TokenKind::Op && tokens[i].text == "{";
        let is_close = tokens[i].kind == TokenKind::Op && tokens[i].text == "}";
        let is_semi = tokens[i].kind == TokenKind::Op && tokens[i].text == ";";

        if is_open {
            if let Some(attr_depth) = pending {
                if depth <= attr_depth {
                    open_regions.push(depth);
                    pending = None;
                }
            }
            depth += 1;
        }
        if is_close {
            depth -= 1;
            if open_regions.last().is_some_and(|d| depth <= *d) {
                open_regions.pop();
                // The closing brace itself still belongs to the region.
                tokens[i].in_test = true;
                i += 1;
                continue;
            }
        }
        if is_semi {
            if let Some(attr_depth) = pending {
                if depth <= attr_depth {
                    pending = None;
                }
            }
        }
        if !open_regions.is_empty() || pending.is_some() {
            tokens[i].in_test = true;
        }
        i += 1;
    }
}

/// If `tokens` starts with `#[cfg(test)]` or `#[test]`, returns the
/// attribute's token length.
fn test_attr_len(tokens: &[Token]) -> Option<usize> {
    let txt = |i: usize| -> Option<&str> { tokens.get(i).map(|t| t.text.as_str()) };
    if txt(0)? != "#" || txt(1)? != "[" {
        return None;
    }
    if txt(2)? == "test" && txt(3)? == "]" {
        return Some(4);
    }
    if txt(2)? == "cfg" && txt(3)? == "(" && txt(4)? == "test" && txt(5)? == ")" && txt(6)? == "]" {
        return Some(7);
    }
    None
}

/// Char-level scanning state.
struct Cursor<'s> {
    rest: std::str::Chars<'s>,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn new(source: &'s str) -> Self {
        Cursor {
            rest: source.chars(),
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest.clone().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest.clone().nth(1)
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest.clone().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    /// True when position `start` begins a raw-string body: zero or more
    /// `#` then `"`. Used to tell `r"..."`/`r#"..."#` from identifiers
    /// like `r#type` or plain `r2`.
    fn raw_string_ahead(&self, start: usize) -> bool {
        let mut it = self.rest.clone().skip(start);
        loop {
            match it.next() {
                Some('#') => continue,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    /// Consumes `//...` to end of line, returning the comment text.
    fn consume_line_comment(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Consumes a (possibly nested) `/* ... */` block comment, scanning
    /// its text for allow directives line by line.
    fn consume_block_comment(&mut self, allows: &mut Vec<Allow>) {
        let start_line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump();
        let mut nesting = 1u32;
        while nesting > 0 {
            match (self.peek(), self.peek2()) {
                (Some('/'), Some('*')) => {
                    nesting += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    nesting -= 1;
                    text.push_str("*/");
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        scan_allow(&text, start_line, allows);
    }

    /// Consumes a `"..."` string (opening quote at cursor), returning the
    /// inner text uncooked. `\"` and `\\` are honored so the terminator
    /// is found correctly; multi-line strings are supported.
    fn consume_quoted_string(&mut self) -> String {
        let mut inner = String::new();
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    inner.push('\\');
                    if let Some(esc) = self.bump() {
                        inner.push(esc);
                    }
                }
                _ => inner.push(c),
            }
        }
        inner
    }

    /// Consumes `r"..."` / `r##"..."##` (cursor on the `r`), returning
    /// the inner text. No escapes exist in raw strings.
    fn consume_raw_string(&mut self) -> String {
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut inner = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                // A quote only terminates when followed by `hashes` hashes.
                let mut it = self.rest.clone();
                for _ in 0..hashes {
                    if it.next() != Some('#') {
                        inner.push('"');
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            inner.push(c);
        }
        inner
    }

    /// Consumes a char literal body (cursor on the opening `'`).
    fn consume_char_literal(&mut self) -> String {
        let mut inner = String::new();
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    inner.push('\\');
                    if let Some(esc) = self.bump() {
                        inner.push(esc);
                    }
                }
                _ => inner.push(c),
            }
        }
        inner
    }

    /// At a `'`: decides lifetime vs char literal.
    ///
    /// `'a'` is a char, `'a` / `'static` are lifetimes: after the quote,
    /// an identifier char NOT followed by a closing quote means lifetime.
    fn consume_quote_or_lifetime(&mut self) -> (TokenKind, String) {
        let next = self.peek2();
        let after = self.peek_at(2);
        if is_ident_start(next) && after != Some('\'') {
            self.bump(); // '
            let name = self.consume_ident();
            (TokenKind::Lifetime, name)
        } else {
            (TokenKind::Char, self.consume_char_literal())
        }
    }

    fn consume_ident(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    /// Consumes a numeric literal: digits/underscores, a fractional part
    /// (only when `.` is followed by a digit, so ranges `0..n` and method
    /// calls `1.max(…)` stay separate tokens), an exponent, and any
    /// alphanumeric suffix (`u32`, `f64`, hex digits).
    fn consume_number(&mut self) -> String {
        let mut num = String::new();
        while let Some(c) = self.peek() {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && (num.ends_with('e') || num.ends_with('E'))
                    && !num.starts_with("0x"));
            if !continues {
                break;
            }
            num.push(c);
            self.bump();
        }
        num
    }

    /// Consumes one operator token, greedily matching the multi-char
    /// operators the checks care to keep whole.
    fn consume_op(&mut self) -> String {
        const TWO_CHAR: [&str; 13] = [
            "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "+=", "-=", "*=",
        ];
        let a = self.bump().unwrap_or(' ');
        if let Some(b) = self.peek() {
            let mut two = String::new();
            two.push(a);
            two.push(b);
            if TWO_CHAR.contains(&two.as_str()) {
                self.bump();
                return two;
            }
        }
        a.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexedFile) -> Vec<(&str, bool)> {
        file.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.in_test))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_ident_scanning() {
        let f = lex(r#"let s = "unwrap() inside a string"; s.len()"#);
        let names: Vec<&str> = idents(&f).iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["let", "s", "s", "len"]);
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("unwrap()")));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let f = lex(r###"let s = r#"has "quotes" and unwrap()"#; done()"###);
        let names: Vec<&str> = idents(&f).iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        let f = lex("/* outer /* inner unwrap() */ still comment */ fn live() {}");
        let names: Vec<&str> = idents(&f).iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["fn", "live"]);
    }

    #[test]
    fn cfg_test_module_marks_tokens() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod() }\n}\nfn after() {}";
        let f = lex(src);
        let got = idents(&f);
        assert_eq!(
            got,
            [
                ("fn", false),
                ("prod", false),
                ("cfg", true),
                ("test", true),
                ("mod", true),
                ("tests", true),
                ("fn", true),
                ("t", true),
                ("prod", true),
                ("fn", false),
                ("after", false),
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';");
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "a"]);
        let chars: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x", "\\n"]);
    }

    #[test]
    fn float_and_integer_literals() {
        let f = lex("let a = 1.5; let b = 10; let c = 1e-9; let d = 2f64; let r = 0..10;");
        let nums: Vec<(&str, bool)> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| (t.text.as_str(), t.is_float()))
            .collect();
        assert_eq!(
            nums,
            [
                ("1.5", true),
                ("10", false),
                ("1e-9", true),
                ("2f64", true),
                ("0", false),
                ("10", false),
            ]
        );
    }

    #[test]
    fn allow_directives_record_line_and_scope() {
        let src =
            "// lint:allow-file(golden-header)\nlet x = 1; // lint:allow(float-eq): exact guard\n";
        let f = lex(src);
        assert!(f.allowed("golden-header", 40));
        assert!(f.allowed("float-eq", 2));
        assert!(f.allowed("float-eq", 3), "allow covers the next line too");
        assert!(!f.allowed("float-eq", 4));
        assert!(!f.allowed("no-panic", 2));
    }
}
