// lint:allow-file(single-serializer) — this module demonstrates the
// file-scope allow form.

pub struct Cell {
    // lint:allow(unit-suffix): preceding-line allow form
    pub cost: f64,
    pub saving: f64, // lint:allow(unit-suffix): same-line allow form
}

pub fn to_csv(cell: &Cell) -> String {
    let row = format!("{},{}", cell.cost, cell.saving);
    // lint:allow(determinism): exact-zero guard
    if cell.cost == 0.0 {
        return String::new();
    }
    row
}
