/* Block comments carry allows too.
   lint:allow-file(no-panic) */

pub fn parse(input: &str) -> f64 {
    input.parse().unwrap()
}
