// no-panic violations: the scenario crate is a panic-free path.
pub fn parse(input: &str) -> f64 {
    let first = input.split(',').next().unwrap(); // no-panic violation
    let value: f64 = first.parse().expect("a number"); // no-panic violation
    if value.is_nan() {
        panic!("nan"); // no-panic violation
    }
    value
}

// unit-suffix violation: a scalar float scenario key with no unit suffix.
pub fn schema_key() -> &'static str {
    let mut view = View;
    view.opt_f64("cluster")
}

struct View;
impl View {
    fn opt_f64(&mut self, key: &'static str) -> &'static str {
        key
    }
}

// These are fine: unwrap_or is total, and expect_line_end is not expect.
pub fn total(input: &str) -> usize {
    let n = input.parse().unwrap_or(0);
    expect_line_end();
    n
}

fn expect_line_end() {}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: f64 = "1.5".parse().unwrap(); // exempt: test code
        assert!(v > 0.0);
    }

    #[cfg(test)]
    mod nested {
        #[test]
        fn nested_modules_stay_exempt() {
            "2.5".parse::<f64>().unwrap(); // exempt: nested test module
        }
    }
}
