// NOT a violation: actuary-obs is the approved clock crate — Instant
// and SystemTime here must produce no determinism finding.
use std::time::{Instant, SystemTime};

pub fn anchor() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
