// determinism violation: the clock ban covers every crate outside
// actuary-obs, including serving code that is not a result crate.
use std::time::Instant;

// NOT a violation: HashMap is only banned in result-producing crates,
// and actuary-cli is not one.
use std::collections::HashMap;

pub fn table_len() -> usize {
    HashMap::<u32, u32>::new().len()
}
