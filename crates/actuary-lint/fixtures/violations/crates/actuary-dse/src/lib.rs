// crate-dag violation: actuary-figures is referenced but never declared.
use actuary_figures::fig8;
use std::collections::HashMap; // determinism violation
use std::time::Instant; // determinism violation

// unit-suffix violation: a bare f64 cost field.
pub struct Cell {
    pub cost: f64,
    pub area_mm2: f64, // compliant — no finding
}

// single-serializer violation: a to_csv definition outside units/report.
pub fn to_csv(cell: &Cell) -> String {
    // single-serializer violation: hand-rolled row format string.
    let row = format!("{},{}", cell.cost, cell.area_mm2);
    // single-serializer violation: joining with a comma.
    let cols = ["a".to_string(), "b".to_string()].join(",");
    // determinism violation: float equality against a literal.
    if cell.cost == 0.0 {
        return cols;
    }
    row
}

#[cfg(test)]
mod tests {
    // Exempt: test code may compare floats exactly and use HashMap.
    use std::collections::HashMap;

    #[test]
    fn exact() {
        assert!(1.5 == 1.5);
        let _ = HashMap::<u32, u32>::new();
    }
}
