// The base layer declares one column schema; the golden CSV next to this
// workspace has a second column nothing declares (golden-header drift).
pub const COLUMNS: [&str; 1] = ["declared_col"];
