//! Terminal-friendly reporting for the *Chiplet Actuary* reproduction:
//! tables, stacked-bar charts, line charts, CSV, Markdown — and the
//! streaming [`Artifact`] layer every machine-readable result goes
//! through (see [`artifact`](crate::Artifact)).
//!
//! The paper's evaluation figures are stacked bar charts (cost breakdowns
//! per configuration) and line plots (yield/cost vs area). This crate
//! renders both as plain text so every experiment can be inspected in a
//! terminal, diffed in CI, and pasted into `EXPERIMENTS.md` — replacing the
//! original matplotlib pipeline.
//!
//! # Layer role
//!
//! In the workspace DAG this crate is the *output boundary*, one layer
//! above the engines (`actuary-mc`, `actuary-dse`) and beside
//! `actuary-scenario`: engines produce typed rows, and this crate is the
//! only place those rows become bytes. The workspace's single-serializer
//! invariant (enforced by `actuary-lint`) pins all row formatting here
//! and in `actuary-units`: [`Artifact`] holds the typed rows once, and
//! every encoding — CSV ([`Artifact::write_csv_to`]) and JSON lines
//! ([`Artifact::write_jsonl_to`]) — is a *sink* over that same data, not
//! a second serializer. That is what lets the CLI, the HTTP server and
//! the committed goldens stay byte-identical by construction: there is
//! exactly one formatter per value, reused everywhere.
//!
//! # Examples
//!
//! ```
//! use actuary_report::{StackedBarChart, Table};
//!
//! let mut chart = StackedBarChart::new("Normalized RE cost");
//! chart.push_bar("SoC", &[("raw chips", 0.6), ("defects", 0.4)]);
//! chart.push_bar("MCM", &[("raw chips", 0.55), ("defects", 0.25)]);
//! let text = chart.render(40);
//! assert!(text.contains("SoC"));
//!
//! let mut table = Table::new(vec!["area", "yield"]);
//! table.push_row(vec!["100".to_string(), "91.4%".to_string()]);
//! assert!(table.to_markdown().contains("| area |"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifact;
mod chart;
mod csv;
mod table;

pub use artifact::{Artifact, IoSink, RowEmit};
pub use chart::{LineChart, StackedBarChart};
pub use csv::{csv_escape, write_csv, write_csv_row};
pub use table::Table;
