use std::fmt;

/// A simple text table with fixed headers and string cells.
///
/// Renders as aligned plain text ([`Table::render`]), GitHub-flavoured
/// Markdown ([`Table::to_markdown`]) or CSV ([`Table::to_csv`]).
///
/// # Examples
///
/// ```
/// use actuary_report::Table;
///
/// let mut t = Table::new(vec!["node", "yield"]);
/// t.push_row(vec!["5nm".into(), "43.0%".into()]);
/// t.push_row(vec!["14nm".into(), "53.8%".into()]);
/// assert_eq!(t.row_count(), 2);
/// let text = t.render();
/// assert!(text.contains("5nm"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (each padded/truncated to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.headers.len()
    }

    /// Column widths: max display length of header and cells.
    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders aligned plain text with a header separator.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect();
            parts.join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders CSV (RFC-4180 escaping).
    pub fn to_csv(&self) -> String {
        let mut records: Vec<Vec<String>> = vec![self.headers.clone()];
        records.extend(self.rows.iter().cloned());
        crate::csv::write_csv(&records)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22.5".into()]);
        t
    }

    #[test]
    fn alignment_pads_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, 2 rows
        assert!(lines[0].starts_with("name "));
        assert!(lines[2].starts_with("alpha"));
        // All rows have the same rendered width.
        assert!(lines[2].trim_end().len() <= lines[0].len() + 2);
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn csv_roundtrip_basics() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "alpha,1");
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only".into()]);
        t.push_row(vec!["x".into(), "y".into(), "z".into()]);
        assert_eq!(t.row_count(), 2);
        let md = t.to_markdown();
        assert!(md.contains("| only |  |"));
        assert!(!md.contains('z'), "extra cells are dropped");
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
    }
}
