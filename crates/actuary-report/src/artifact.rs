//! The canonical home of the streaming [`Artifact`] output layer.
//!
//! Every tabular result in the workspace — exploration grids, winner
//! tables, Pareto fronts, sweeps, scenario costs/yields, figure tables —
//! is emitted as an [`Artifact`]: a named table (column schema + streaming
//! row source + metadata) serialized by exactly one CSV writer,
//! [`Artifact::write_csv_to`], with [`Artifact::write_jsonl_to`] as the
//! second *sink* over the same row source (JSON lines for `Accept:
//! application/json` clients — same cells, keyed by column name). Sinks
//! are anything `fmt::Write`; [`IoSink`] adapts files and sockets
//! (`io::Write`), which is how `actuary explore --out`, `actuary run
//! --out-dir` and the `actuary serve` HTTP responses all stream the same
//! bytes.
//!
//! Like the CSV primitives, the mechanics live in the base layer
//! (`actuary-units`) so the DSE and scenario crates can produce artifacts
//! without depending upward on this crate; they are re-exported here to
//! keep `actuary_report::{Artifact, IoSink}` the canonical public names.

// See the module docs above: the type lives in `actuary-units` for DAG
// reasons, this re-export is the canonical name.
pub use actuary_units::{Artifact, IoSink, RowEmit};

use crate::table::Table;

impl Table {
    /// The table as a streaming [`Artifact`] (kind `"table"`), borrowing
    /// the rows; byte-identical to [`Table::to_csv`].
    pub fn artifact(&self, name: impl Into<String>) -> Artifact<'_> {
        let columns: Vec<&str> = self.headers().iter().map(String::as_str).collect();
        Artifact::new(name, "table", &columns, move |emit| {
            for row in self.rows() {
                emit(row)?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_artifact_matches_to_csv_byte_for_byte() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["a,b".into(), "1".into()]);
        t.push_row(vec!["plain".into(), "2.5".into()]);
        let artifact = t.artifact("demo");
        assert_eq!(artifact.name(), "demo");
        assert_eq!(artifact.kind(), "table");
        assert_eq!(artifact.csv(), t.to_csv());
    }
}
