//! ASCII charts: horizontal stacked bars (the paper's cost-breakdown
//! figures) and line charts (the yield/cost-vs-area curves of Figure 2).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fill glyphs cycled through by stacked-bar segments, in legend order.
const SEGMENT_GLYPHS: [char; 8] = ['█', '▓', '▒', '░', '◆', '●', '○', '·'];

/// A horizontal stacked bar chart.
///
/// Each bar is a labelled row whose segments are scaled to a shared maximum
/// so bars are visually comparable — exactly the layout of the paper's
/// Figures 4–10 turned sideways.
///
/// # Examples
///
/// ```
/// use actuary_report::StackedBarChart;
///
/// let mut chart = StackedBarChart::new("cost");
/// chart.push_bar("SoC", &[("chips", 1.0), ("package", 0.2)]);
/// chart.push_bar("MCM", &[("chips", 0.7), ("package", 0.35)]);
/// let out = chart.render(40);
/// assert!(out.contains("SoC"));
/// assert!(out.contains("legend"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StackedBarChart {
    title: String,
    bars: Vec<(String, Vec<(String, f64)>)>,
}

impl StackedBarChart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        StackedBarChart {
            title: title.into(),
            bars: Vec::new(),
        }
    }

    /// Appends one bar with `(segment label, value)` pairs. Negative
    /// segment values are clamped to zero.
    pub fn push_bar(&mut self, label: impl Into<String>, segments: &[(&str, f64)]) {
        self.bars.push((
            label.into(),
            segments
                .iter()
                .map(|(name, v)| (name.to_string(), v.max(0.0)))
                .collect(),
        ));
    }

    /// Number of bars.
    pub fn bar_count(&self) -> usize {
        self.bars.len()
    }

    /// Renders the chart with bars at most `width` characters long,
    /// followed by a glyph legend.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);

        // Stable legend: first-seen order of segment labels.
        let mut legend: Vec<String> = Vec::new();
        for (_, segments) in &self.bars {
            for (name, _) in segments {
                if !legend.contains(name) {
                    legend.push(name.clone());
                }
            }
        }
        let glyph_of: BTreeMap<&str, char> = legend
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), SEGMENT_GLYPHS[i % SEGMENT_GLYPHS.len()]))
            .collect();

        let max_total = self
            .bars
            .iter()
            .map(|(_, segs)| segs.iter().map(|(_, v)| v).sum::<f64>())
            .fold(0.0f64, f64::max);
        let label_width = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);

        for (label, segments) in &self.bars {
            let total: f64 = segments.iter().map(|(_, v)| v).sum();
            let _ = write!(out, "{label:<label_width$} |");
            if max_total > 0.0 {
                let mut drawn = 0usize;
                let bar_len = ((total / max_total) * width as f64).round() as usize;
                for (name, value) in segments {
                    let len = if total > 0.0 {
                        ((value / total) * bar_len as f64).round() as usize
                    } else {
                        0
                    };
                    let glyph = glyph_of[name.as_str()];
                    for _ in 0..len.min(bar_len.saturating_sub(drawn)) {
                        out.push(glyph);
                    }
                    drawn += len;
                }
            }
            let _ = writeln!(out, " {total:.3}");
        }
        let _ = writeln!(out, "legend:");
        for name in &legend {
            let _ = writeln!(out, "  {} {}", glyph_of[name.as_str()], name);
        }
        out
    }
}

/// A multi-series ASCII line chart on a character grid.
///
/// # Examples
///
/// ```
/// use actuary_report::LineChart;
///
/// let mut chart = LineChart::new("yield vs area", "mm²", "%");
/// chart.push_series("5nm", vec![(100.0, 90.0), (500.0, 60.0), (800.0, 43.0)]);
/// let out = chart.render(40, 10);
/// assert!(out.contains("yield vs area"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Series marker glyphs, cycled in order.
    const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Appends a named series of `(x, y)` points.
    pub fn push_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Renders onto a `width × height` character grid with axis ranges
    /// derived from the data, followed by a marker legend.
    pub fn render(&self, width: usize, height: usize) -> String {
        let width = width.max(10);
        let height = height.max(4);
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} vs {})", self.title, self.y_label, self.x_label);

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &all {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; width]; height];
        for (s_idx, (_, points)) in self.series.iter().enumerate() {
            let marker = Self::MARKERS[s_idx % Self::MARKERS.len()];
            for (x, y) in points {
                let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
                let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
                let row = height - 1 - row;
                grid[row.min(height - 1)][col.min(width - 1)] = marker;
            }
        }
        for (i, row) in grid.iter().enumerate() {
            let y_val = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y_val:>10.2} |{line}");
        }
        let _ = writeln!(out, "{:>11}+{}", "", "-".repeat(width));
        let _ = writeln!(
            out,
            "{:>12}{x_min:<.0}{:>w$}{x_max:<.0}",
            "",
            "",
            w = width.saturating_sub(8)
        );
        let _ = writeln!(out, "legend:");
        for (i, (name, _)) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", Self::MARKERS[i % Self::MARKERS.len()], name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_bar_scales_to_longest() {
        let mut chart = StackedBarChart::new("t");
        chart.push_bar("big", &[("a", 2.0)]);
        chart.push_bar("small", &[("a", 1.0)]);
        let out = chart.render(20);
        let lines: Vec<&str> = out.lines().collect();
        let big_len = lines[1].chars().filter(|&c| c == '█').count();
        let small_len = lines[2].chars().filter(|&c| c == '█').count();
        assert!(big_len > small_len);
        assert!((big_len as f64 / small_len as f64 - 2.0).abs() < 0.3);
    }

    #[test]
    fn stacked_bar_segments_use_distinct_glyphs() {
        let mut chart = StackedBarChart::new("t");
        chart.push_bar("x", &[("first", 1.0), ("second", 1.0)]);
        let out = chart.render(20);
        assert!(out.contains('█'));
        assert!(out.contains('▓'));
        assert!(out.contains("first"));
        assert!(out.contains("second"));
        assert_eq!(chart.bar_count(), 1);
    }

    #[test]
    fn stacked_bar_clamps_negatives() {
        let mut chart = StackedBarChart::new("t");
        chart.push_bar("x", &[("a", -5.0), ("b", 1.0)]);
        let out = chart.render(20);
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn stacked_bar_totals_shown() {
        let mut chart = StackedBarChart::new("costs");
        chart.push_bar("SoC", &[("chips", 0.75), ("pkg", 0.25)]);
        let out = chart.render(30);
        assert!(out.contains("1.000"));
    }

    #[test]
    fn empty_bar_chart_renders_title() {
        let chart = StackedBarChart::new("empty");
        let out = chart.render(20);
        assert!(out.starts_with("empty"));
    }

    #[test]
    fn line_chart_renders_grid() {
        let mut chart = LineChart::new("yield", "area", "%");
        chart.push_series("5nm", vec![(0.0, 100.0), (800.0, 43.0)]);
        chart.push_series("14nm", vec![(0.0, 100.0), (800.0, 54.0)]);
        let out = chart.render(40, 12);
        assert!(out.contains('*'));
        assert!(out.contains('+'));
        assert!(out.contains("5nm"));
        assert!(out.contains("14nm"));
        assert_eq!(chart.series_count(), 2);
        // 12 grid rows + title + axis + labels + legend rows.
        assert!(out.lines().count() >= 16);
    }

    #[test]
    fn line_chart_no_data() {
        let chart = LineChart::new("t", "x", "y");
        assert!(chart.render(30, 8).contains("no data"));
    }

    #[test]
    fn line_chart_degenerate_ranges() {
        let mut chart = LineChart::new("t", "x", "y");
        chart.push_series("s", vec![(1.0, 1.0), (1.0, 1.0)]);
        // Must not panic or divide by zero.
        let out = chart.render(20, 6);
        assert!(out.contains('*'));
    }
}
