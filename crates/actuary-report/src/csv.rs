//! Minimal RFC-4180 CSV emission (writer only; no external dependency).

/// Escapes one CSV field: quotes it when it contains a comma, quote, or
/// newline, doubling embedded quotes.
///
/// # Examples
///
/// ```
/// use actuary_report::csv_escape;
///
/// assert_eq!(csv_escape("plain"), "plain");
/// assert_eq!(csv_escape("a,b"), "\"a,b\"");
/// assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes records as CSV text with `\n` line endings.
///
/// # Examples
///
/// ```
/// use actuary_report::write_csv;
///
/// let rows = vec![
///     vec!["a".to_string(), "b".to_string()],
///     vec!["1".to_string(), "x,y".to_string()],
/// ];
/// assert_eq!(write_csv(&rows), "a,b\n1,\"x,y\"\n");
/// ```
pub fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        let escaped: Vec<String> = record.iter().map(|f| csv_escape(f)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(csv_escape(""), "");
        assert_eq!(csv_escape("simple"), "simple");
        assert_eq!(csv_escape("with,comma"), "\"with,comma\"");
        assert_eq!(csv_escape("with\nnewline"), "\"with\nnewline\"");
        assert_eq!(csv_escape("q\"uote"), "\"q\"\"uote\"");
    }

    #[test]
    fn empty_records() {
        assert_eq!(write_csv(&[]), "");
        assert_eq!(write_csv(&[vec![]]), "\n");
    }

    #[test]
    fn multi_row() {
        let rows = vec![
            vec!["h1".to_string(), "h2".to_string()],
            vec!["1.5".to_string(), "2.5".to_string()],
        ];
        assert_eq!(write_csv(&rows), "h1,h2\n1.5,2.5\n");
    }
}
