//! Minimal RFC-4180 CSV emission (writer only; no external dependency).

// The CSV primitives live in the base layer (`actuary-units`) so the DSE
// crate can emit CSV without depending upward on this crate; re-exported
// here to keep `actuary_report::{csv_escape, write_csv}` the canonical
// public names.
pub use actuary_units::{csv_escape, write_csv, write_csv_row};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(csv_escape(""), "");
        assert_eq!(csv_escape("simple"), "simple");
        assert_eq!(csv_escape("with,comma"), "\"with,comma\"");
        assert_eq!(csv_escape("with\nnewline"), "\"with\nnewline\"");
        assert_eq!(csv_escape("q\"uote"), "\"q\"\"uote\"");
    }

    #[test]
    fn empty_records() {
        assert_eq!(write_csv(&[]), "");
        assert_eq!(write_csv(&[vec![]]), "\n");
    }

    #[test]
    fn multi_row() {
        let rows = vec![
            vec!["h1".to_string(), "h2".to_string()],
            vec!["1.5".to_string(), "2.5".to_string()],
        ];
        assert_eq!(write_csv(&rows), "h1,h2\n1.5,2.5\n");
    }
}
