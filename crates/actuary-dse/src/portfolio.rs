//! Portfolio-grid exploration: the paper's reuse schemes as a search axis.
//!
//! [`crate::explore`] grids *single systems* — it answers "how should one
//! chip be built", not the paper's headline question "how much does chiplet
//! *reuse across derivative systems* save" (§5, Figures 8–10). This module
//! crosses the single-system axes with two more:
//!
//! * a **reuse-scheme axis** ([`ReuseScheme`]): the standalone baseline
//!   plus the paper's SCMS, OCME and FSMC schemes, built from
//!   [`actuary_arch::reuse`] — each grid cell is one member system of the
//!   scheme's derivative family, with the family's shared module, chip,
//!   package and D2D NRE amortized by [`actuary_arch::Portfolio`];
//! * a **flow axis**: chip-first vs chip-last is a per-cell coordinate
//!   instead of a whole-grid scalar, exposing the §5 flow comparison
//!   mechanically.
//!
//! # Cell semantics
//!
//! Every cell keeps the single-system reading of its coordinates: `area`
//! is the member system's total module area and `chiplets` its chiplet
//! count. The scheme decides what *family* that member amortizes NRE with:
//!
//! | scheme | family | member selected by `chiplets` |
//! |--------|--------|-------------------------------|
//! | `none` | the member alone (PR-2 semantics) | any count |
//! | `scms` | one chiplet design of `area/chiplets` builds every multiplicity in [`PortfolioSpace::scms_multiplicities`] | a listed multiplicity |
//! | `ocme` | centre + extensions of `area/chiplets` sockets (`C`, `C+1X`, `C+1X+1Y`, `C+2X+2Y`) | 1, 2, 3 or 5 chips |
//! | `fsmc` | every collocation of `n` types in a `k`-socket package, one family per [`PortfolioSpace::fsmc_situations`] entry | a collocation size `1..=k` |
//!
//! A cell whose `chiplets` is not a member of its scheme's family is
//! recorded as incompatible, never dropped. Under the `Soc` integration a
//! scheme cell is the family's *monolithic baseline* member (one SoC die
//! per derivative, module reuse only — the comparison bar of Figs. 8–10).
//!
//! # Sparse grid storage
//!
//! The result stores only the cells that evaluation actually produced
//! (feasible and infeasible ones) as a sorted `(index, outcome)` list;
//! everything else — incompatible cells, and cells a [`crate::refine`] run
//! pruned — is re-derived from its grid coordinates on read through the
//! internal `classify` pass. A family-scheme grid with a wide chiplet-count axis is
//! *mostly* incompatible, so this turns the dominant storage term into
//! nothing at all: a 10⁸-cell refine run keeps a few hundred thousand
//! entries, not 10⁸ `CellOutcome`s. Readers ([`PortfolioResult::cells`],
//! the artifacts, the winner tables, the fronts) see the identical dense
//! grid in the identical order.
//!
//! # The cached RE core
//!
//! The expensive half of a cell (RE: yield models, wafer gridding; NRE
//! entity totals) depends only on (scheme, node, per-socket area,
//! integration, flow) — not on quantity, and not on which family member
//! the cell reads out. The engine therefore evaluates one
//! [`actuary_arch::PortfolioCore`] per distinct key and re-amortizes it
//! per quantity, which removes the quantity axis (and the member axis of
//! the reuse families) from the evaluation cost: on the default grid this
//! is ~3× fewer full evaluations, with byte-identical output because
//! [`actuary_arch::Portfolio::cost`] itself is core + amortize.
//! [`CorePolicy::Uncached`] keeps the reference path alive for tests.
//!
//! The amortization pass is structured struct-of-arrays over the cells
//! sharing one core: every core walks its own cell list contiguously,
//! amortizing each distinct quantity once and reading members out of that
//! one allocation, instead of the cells chasing a shared `(core,
//! quantity)` map cell by cell.
//!
//! Work is pulled in chunks from an atomic index (the shared chunked
//! engine), and results are reassembled in grid order: one thread and N
//! threads emit byte-identical CSV.
//!
//! # Examples
//!
//! ```
//! use actuary_dse::portfolio::{explore_portfolio, PortfolioSpace, ReuseScheme};
//! use actuary_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let space = PortfolioSpace {
//!     nodes: vec!["7nm".to_string()],
//!     areas_mm2: vec![400.0, 800.0],
//!     quantities: vec![500_000],
//!     ..PortfolioSpace::default()
//! };
//! let result = explore_portfolio(&lib, &space, 2)?;
//! assert_eq!(result.len(), space.len());
//! assert!(result.core_evaluations() < result.len());
//! for winner in result.winners(ReuseScheme::Scms) {
//!     println!("{winner}");
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use actuary_arch::reuse::{FsmcSpec, OcmeSpec, ScmsSpec};
use actuary_arch::{ArchError, PortfolioCore, PortfolioCost};
use actuary_model::AssemblyFlow;
use actuary_tech::{IntegrationKind, NodeId, TechLibrary};
use actuary_units::{Area, Artifact, Quantity};

use crate::engine::{resolve_threads, run_chunked};
use crate::explore::{CellOutcome, IncompatibleReason, ScmsFamily};
use crate::optimizer::{candidate_core, Candidate, CandidateCore};
use crate::pareto::pareto_min_indices;

/// How a grid cell's NRE is shared across derivative systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReuseScheme {
    /// No cross-derivative reuse: the cell is a standalone single system
    /// (the monolithic-portfolio baseline, PR-2's `explore` semantics).
    None,
    /// *Single Chiplet Multiple Systems* (§5.1, Figure 8).
    Scms,
    /// *One Center Multiple Extensions* (§5.2, Figure 9).
    Ocme,
    /// *A few Sockets Multiple Collocations* (§5.3, Figure 10).
    Fsmc,
}

impl ReuseScheme {
    /// Every scheme, in display order.
    pub const ALL: [ReuseScheme; 4] = [
        ReuseScheme::None,
        ReuseScheme::Scms,
        ReuseScheme::Ocme,
        ReuseScheme::Fsmc,
    ];

    /// Stable lower-case label (used in CSV and on the CLI).
    pub fn label(self) -> &'static str {
        match self {
            ReuseScheme::None => "none",
            ReuseScheme::Scms => "scms",
            ReuseScheme::Ocme => "ocme",
            ReuseScheme::Fsmc => "fsmc",
        }
    }
}

impl fmt::Display for ReuseScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ReuseScheme {
    type Err = String;

    /// Parses the user-facing scheme grammar (case-insensitive; `none`
    /// also answers to `single`/`baseline`) — the single definition the
    /// CLI flags and the scenario schema both use.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "single" | "baseline" => Ok(ReuseScheme::None),
            "scms" => Ok(ReuseScheme::Scms),
            "ocme" => Ok(ReuseScheme::Ocme),
            "fsmc" => Ok(ReuseScheme::Fsmc),
            other => Err(format!(
                "unknown reuse scheme {other:?} (none|scms|ocme|fsmc)"
            )),
        }
    }
}

/// Parses one FSMC `(sockets k, chiplet types n)` situation written `KxN`
/// (e.g. `4x6`, case-insensitive `x`) — shared by the CLI's
/// `--fsmc-situations` and the scenario schema's `fsmc_situations`.
///
/// # Errors
///
/// Returns a human-readable message naming the malformed part.
///
/// # Examples
///
/// ```
/// use actuary_dse::portfolio::parse_fsmc_situation;
///
/// assert_eq!(parse_fsmc_situation("4x6"), Ok((4, 6)));
/// assert_eq!(parse_fsmc_situation("2X2"), Ok((2, 2)));
/// assert!(parse_fsmc_situation("4by6").is_err());
/// ```
pub fn parse_fsmc_situation(s: &str) -> Result<(u32, u32), String> {
    let Some((k, n)) = s.split_once(['x', 'X']) else {
        return Err(format!(
            "invalid FSMC situation {s:?} (expected KxN, e.g. 4x6)"
        ));
    };
    let k = k
        .trim()
        .parse()
        .map_err(|e| format!("invalid FSMC sockets in {s:?}: {e}"))?;
    let n = n
        .trim()
        .parse()
        .map_err(|e| format!("invalid FSMC chiplet types in {s:?}: {e}"))?;
    Ok((k, n))
}

/// The portfolio exploration grid: the Cartesian product of every axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioSpace {
    /// Process-node identifiers to explore (must exist in the library).
    pub nodes: Vec<String>,
    /// Total module areas of the member system, in mm².
    pub areas_mm2: Vec<f64>,
    /// Production quantities (per derivative system).
    pub quantities: Vec<u64>,
    /// Integration schemes (`Soc` selects the reuse family's monolithic
    /// baseline portfolio).
    pub integrations: Vec<IntegrationKind>,
    /// Chiplet counts of the member system.
    pub chiplet_counts: Vec<u32>,
    /// Assembly flows — a per-cell axis, not a scalar.
    pub flows: Vec<AssemblyFlow>,
    /// Reuse schemes.
    pub schemes: Vec<ReuseScheme>,
    /// SCMS family multiplicities (the paper's 1X/2X/4X).
    pub scms_multiplicities: Vec<u32>,
    /// FSMC `(sockets k, chiplet types n)` situations — a scheme-parameter
    /// axis: every entry expands the `fsmc` scheme into one family, so one
    /// run sweeps Figure 10's x-axis (the paper's five situations are
    /// [`PortfolioSpace::FSMC_PAPER_SITUATIONS`]).
    pub fsmc_situations: Vec<(u32, u32)>,
    /// OCME centre nodes — a scheme-parameter axis: `None` keeps the centre
    /// on the cell's node (homogeneous), `Some(id)` designs it at a mature
    /// node (the Figure 9 "hetero" bar).
    pub ocme_center_nodes: Vec<Option<String>>,
    /// Whether the SCMS / OCME families share one package design across
    /// their member systems (§5.1's package-reuse trade-off; FSMC always
    /// shares the `k`-socket package by construction).
    pub package_reuse: bool,
}

impl Default for PortfolioSpace {
    /// The §6 replication grid crossed with all four schemes under the
    /// paper's chip-last flow — 6,480 cells (~4× the single-system grid).
    fn default() -> Self {
        PortfolioSpace {
            nodes: vec!["14nm".to_string(), "7nm".to_string(), "5nm".to_string()],
            areas_mm2: (1..=9).map(|i| i as f64 * 100.0).collect(),
            quantities: vec![500_000, 2_000_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: ReuseScheme::ALL.to_vec(),
            scms_multiplicities: vec![1, 2, 4],
            fsmc_situations: vec![(4, 4)],
            ocme_center_nodes: vec![None],
            package_reuse: false,
        }
    }
}

/// One resolved point of the scheme axis: a scheme plus the family
/// parameters that distinguish it from its siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeVariant {
    /// The reuse scheme.
    pub scheme: ReuseScheme,
    /// FSMC `(sockets, chiplet types)`; `None` for other schemes.
    pub fsmc: Option<(u32, u32)>,
    /// OCME centre node; `None` for a homogeneous centre (and for other
    /// schemes).
    pub center_node: Option<String>,
}

impl SchemeVariant {
    /// Stable parameter label used in the CSV `scheme_params` column:
    /// `"k=4,n=6"` for FSMC situations, `"center=14nm"` for heterogeneous
    /// OCME, empty otherwise.
    pub fn params_label(&self) -> String {
        match (self.fsmc, &self.center_node) {
            (Some((k, n)), _) => format!("k={k},n={n}"),
            (None, Some(center)) => format!("center={center}"),
            _ => String::new(),
        }
    }
}

impl PortfolioSpace {
    /// The single-system space `space`, lifted into a one-scheme
    /// one-flow portfolio space — [`crate::explore::explore`] runs on the
    /// portfolio engine through this conversion.
    pub fn from_single_system(space: &crate::explore::ExploreSpace) -> Self {
        PortfolioSpace {
            nodes: space.nodes.clone(),
            areas_mm2: space.areas_mm2.clone(),
            quantities: space.quantities.clone(),
            integrations: space.integrations.clone(),
            chiplet_counts: space.chiplet_counts.clone(),
            flows: vec![space.flow],
            schemes: vec![ReuseScheme::None],
            ..PortfolioSpace::default()
        }
    }

    /// The paper's five Figure 10 `(sockets k, chiplet types n)` situations.
    pub const FSMC_PAPER_SITUATIONS: [(u32, u32); 5] = [(2, 2), (2, 4), (3, 4), (4, 4), (4, 6)];

    /// The scheme axis after parameter expansion: `fsmc` contributes one
    /// variant per [`PortfolioSpace::fsmc_situations`] entry and `ocme` one
    /// per [`PortfolioSpace::ocme_center_nodes`] entry.
    pub fn scheme_variants(&self) -> Vec<SchemeVariant> {
        let mut out = Vec::new();
        for &scheme in &self.schemes {
            match scheme {
                ReuseScheme::Fsmc => {
                    for &(k, n) in &self.fsmc_situations {
                        out.push(SchemeVariant {
                            scheme,
                            fsmc: Some((k, n)),
                            center_node: None,
                        });
                    }
                }
                ReuseScheme::Ocme => {
                    for center in &self.ocme_center_nodes {
                        out.push(SchemeVariant {
                            scheme,
                            fsmc: None,
                            center_node: center.clone(),
                        });
                    }
                }
                ReuseScheme::None | ReuseScheme::Scms => out.push(SchemeVariant {
                    scheme,
                    fsmc: None,
                    center_node: None,
                }),
            }
        }
        out
    }

    /// The number of grid cells (product of the axis lengths, with the
    /// scheme axis expanded into its parameter variants).
    pub fn len(&self) -> usize {
        self.nodes.len()
            * self.areas_mm2.len()
            * self.quantities.len()
            * self.integrations.len()
            * self.chiplet_counts.len()
            * self.flows.len()
            * self.scheme_variants().len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates every axis independently (an empty axis must error, not
    /// silently collapse the grid) plus the scheme family parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] naming the offending
    /// axis, or [`ArchError::Unit`] for a non-finite area.
    pub fn validate(&self) -> Result<(), ArchError> {
        let axis_err = |axis: &str| ArchError::InvalidArchitecture {
            reason: format!("portfolio exploration space has no {axis}"),
        };
        if self.nodes.is_empty() {
            return Err(axis_err("nodes"));
        }
        if self.areas_mm2.is_empty() {
            return Err(axis_err("areas"));
        }
        if self.quantities.is_empty() {
            return Err(axis_err("quantities"));
        }
        if self.integrations.is_empty() {
            return Err(axis_err("integration kinds"));
        }
        if self.chiplet_counts.is_empty() {
            return Err(axis_err("chiplet counts"));
        }
        if self.flows.is_empty() {
            return Err(axis_err("assembly flows"));
        }
        if self.schemes.is_empty() {
            return Err(axis_err("reuse schemes"));
        }
        for &mm2 in &self.areas_mm2 {
            Area::from_mm2(mm2)?;
        }
        if self.chiplet_counts.contains(&0) {
            return Err(ArchError::InvalidArchitecture {
                reason: "chiplet count must be at least 1, got 0".to_string(),
            });
        }
        if self.schemes.contains(&ReuseScheme::Scms) {
            if self.scms_multiplicities.is_empty() {
                return Err(axis_err("SCMS multiplicities"));
            }
            if self.scms_multiplicities.contains(&0) {
                return Err(ArchError::InvalidArchitecture {
                    reason: "SCMS multiplicity must be at least 1, got 0".to_string(),
                });
            }
            let unique: std::collections::BTreeSet<u32> =
                self.scms_multiplicities.iter().copied().collect();
            if unique.len() != self.scms_multiplicities.len() {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "SCMS multiplicities must be distinct, got {:?}",
                        self.scms_multiplicities
                    ),
                });
            }
        }
        if self.schemes.contains(&ReuseScheme::Fsmc) {
            if self.fsmc_situations.is_empty() {
                return Err(axis_err("FSMC situations"));
            }
            if self.fsmc_situations.iter().any(|&(k, n)| k == 0 || n == 0) {
                return Err(ArchError::InvalidArchitecture {
                    reason: "FSMC needs at least one socket and one chiplet type".to_string(),
                });
            }
            let unique: std::collections::BTreeSet<(u32, u32)> =
                self.fsmc_situations.iter().copied().collect();
            if unique.len() != self.fsmc_situations.len() {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "FSMC situations must be distinct, got {:?}",
                        self.fsmc_situations
                    ),
                });
            }
        }
        if self.schemes.contains(&ReuseScheme::Ocme) {
            if self.ocme_center_nodes.is_empty() {
                return Err(axis_err("OCME centre nodes"));
            }
            let unique: std::collections::BTreeSet<&Option<String>> =
                self.ocme_center_nodes.iter().collect();
            if unique.len() != self.ocme_center_nodes.len() {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "OCME centre nodes must be distinct, got {:?}",
                        self.ocme_center_nodes
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Whether the engine may share one RE/NRE core evaluation across every
/// cell with the same geometry key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorePolicy {
    /// Share cores across cells that differ only in quantity or family
    /// member — the default, ~3× fewer full evaluations on the default
    /// grid with byte-identical output.
    Cached,
    /// Evaluate every cell from scratch. The reference path the cache is
    /// tested against; it exists so the byte-identity claim stays a
    /// mechanical assertion instead of an argument.
    Uncached,
}

/// Counters and occupancy of a [`SharedCoreCache`], read without blocking
/// evaluations (the server surfaces them on `GET /statz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreCacheStats {
    /// Core lookups answered from the cache.
    pub hits: u64,
    /// Core lookups that required a fresh evaluation.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A cross-call core cache: evaluated cores keyed by *everything an
/// evaluation reads* — the caller-supplied library tag, the core spec
/// (scheme, node, area, integration, chiplet key, flow, scheme
/// parameters), and the space-level knobs the scheme actually consumes
/// (SCMS multiplicities, package reuse). Two requests whose grids overlap
/// share the expensive RE/NRE evaluations even when their spaces differ on
/// axes a core never reads (quantities, extra nodes, other schemes).
///
/// The cache is LRU-bounded at `capacity` entries and safe to share across
/// threads; recoverable per-cell infeasibilities are cached (they are
/// results too), hard engine errors are not. Results are byte-identical to
/// the uncached path because amortization always reruns per request —
/// only the quantity-independent core is reused.
pub struct SharedCoreCache {
    capacity: usize,
    inner: Mutex<SharedCacheInner>,
}

struct SharedCacheInner {
    map: BTreeMap<SharedCoreKey, SharedCoreEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct SharedCoreEntry {
    last_used: u64,
    value: Arc<Result<CoreValue, String>>,
}

impl SharedCoreCache {
    /// An empty cache holding at most `capacity` cores. A capacity of `0`
    /// disables storage: every lookup misses and nothing is retained.
    pub fn new(capacity: usize) -> Self {
        SharedCoreCache {
            capacity,
            inner: Mutex::new(SharedCacheInner {
                map: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Lifetime hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> CoreCacheStats {
        let inner = self.lock();
        CoreCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }

    /// The cache never holds the lock across an evaluation, so a panicking
    /// evaluator cannot poison it; if a panic ever unwinds through a
    /// counter update anyway, the plain-data state is still coherent.
    fn lock(&self) -> MutexGuard<'_, SharedCacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up every key, refreshing recency on hits. One call is one
    /// recency tick: all cores of one request age together.
    fn fetch(&self, keys: &[SharedCoreKey]) -> Vec<Option<Arc<Result<CoreValue, String>>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                hits += 1;
                out.push(Some(Arc::clone(&entry.value)));
            } else {
                misses += 1;
                out.push(None);
            }
        }
        inner.hits += hits;
        inner.misses += misses;
        out
    }

    /// Inserts freshly evaluated cores, then evicts least-recently-used
    /// entries until the capacity bound holds again.
    fn store(&self, fresh: Vec<(SharedCoreKey, Arc<Result<CoreValue, String>>)>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        for (key, value) in fresh {
            inner.map.insert(
                key,
                SharedCoreEntry {
                    last_used: tick,
                    value,
                },
            );
        }
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity {
            // O(n) scan, deterministic tie-break (first minimum in key
            // order). n is the capacity bound (small); no clock involved.
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            match oldest {
                Some(key) => {
                    inner.map.remove(&key);
                    evicted += 1;
                }
                None => break,
            }
        }
        inner.evictions += evicted;
    }
}

impl fmt::Debug for SharedCoreCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCoreCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Everything a core evaluation reads, flattened into an `Ord` key. Fields
/// a scheme never consumes are normalized away (`fsmc` only matters to
/// FSMC, the center node only to OCME, multiplicities only to SCMS,
/// package reuse only to SCMS/OCME) so overlapping spaces hit as often as
/// correctness allows — and never more.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SharedCoreKey {
    tag: [u8; 32],
    scheme: ReuseScheme,
    node: String,
    area_bits: u64,
    integration: u8,
    chiplets: u32,
    flow: u8,
    fsmc: Option<(u32, u32)>,
    center_node: Option<String>,
    scms_multiplicities: Vec<u32>,
    package_reuse: bool,
}

fn shared_core_key(tag: &[u8; 32], space: &PortfolioSpace, spec: &CoreSpec<'_>) -> SharedCoreKey {
    let (scms_multiplicities, package_reuse) = match spec.scheme {
        ReuseScheme::Scms => (space.scms_multiplicities.clone(), space.package_reuse),
        ReuseScheme::Ocme => (Vec::new(), space.package_reuse),
        ReuseScheme::None | ReuseScheme::Fsmc => (Vec::new(), false),
    };
    SharedCoreKey {
        tag: *tag,
        scheme: spec.scheme,
        node: spec.node.to_string(),
        area_bits: spec.area.mm2().to_bits(),
        integration: integration_rank(spec.integration),
        chiplets: spec.chiplets,
        flow: flow_rank(spec.flow),
        fsmc: if spec.scheme == ReuseScheme::Fsmc {
            spec.fsmc
        } else {
            None
        },
        center_node: if spec.scheme == ReuseScheme::Ocme {
            spec.center_node.map(str::to_string)
        } else {
            None
        },
        scms_multiplicities,
        package_reuse,
    }
}

/// One evaluated portfolio-grid cell: its coordinates plus the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCell {
    /// Process-node identifier.
    pub node: String,
    /// Total module area of the member system in mm².
    pub area_mm2: f64,
    /// Production quantity (per derivative system).
    pub quantity: u64,
    /// Integration scheme.
    pub integration: IntegrationKind,
    /// Chiplet count of the member system.
    pub chiplets: u32,
    /// Assembly flow.
    pub flow: AssemblyFlow,
    /// Reuse scheme.
    pub scheme: ReuseScheme,
    /// Scheme-parameter label of the cell's [`SchemeVariant`] (`"k=4,n=6"`
    /// for an FSMC situation, `"center=14nm"` for heterogeneous OCME, empty
    /// otherwise).
    pub scheme_params: String,
    /// What evaluation produced.
    pub outcome: CellOutcome,
}

/// The cheapest feasible configuration of one (node, area, quantity)
/// operating point *under one reuse scheme* — one row of the per-scheme
/// takeaway tables that replay Figs. 8–10 at grid scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeWinner {
    /// The scheme this row summarizes.
    pub scheme: ReuseScheme,
    /// Process-node identifier.
    pub node: String,
    /// Total module area in mm².
    pub area_mm2: f64,
    /// Production quantity.
    pub quantity: u64,
    /// The cheapest feasible candidate and its flow, or `None` when every
    /// configuration of this operating point was infeasible under the
    /// scheme.
    pub best: Option<(Candidate, AssemblyFlow)>,
    /// Relative saving of the winner vs the *monolithic implementation of
    /// the same system* (the scheme's SoC-baseline cell with the winner's
    /// chiplet count — for `none`, the one-die SoC): `0.25` = 25 % cheaper.
    /// `None` when that baseline is absent or infeasible.
    pub saving_vs_soc_frac: Option<f64>,
}

impl SchemeWinner {
    /// The saving rendered as a signed cost-change percentage
    /// (`"-13.6%"` = 13.6 % cheaper than the monolithic baseline).
    pub fn saving_vs_soc_display(&self) -> Option<String> {
        // `+ 0.0` folds the negative zero of a SoC winner to "+0.0%".
        self.saving_vs_soc_frac
            .map(|s| format!("{:+.1}%", -s * 100.0 + 0.0))
    }
}

impl fmt::Display for SchemeWinner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.best {
            Some((c, flow)) => {
                write!(
                    f,
                    "[{}] {} / {:.0} mm² / {} units: {} × {} chiplets ({flow}) at {} / unit",
                    self.scheme,
                    self.node,
                    self.area_mm2,
                    self.quantity,
                    c.integration,
                    c.chiplets,
                    c.per_unit
                )?;
                if let Some(saving) = self.saving_vs_soc_display() {
                    write!(f, " ({saving} vs SoC)")?;
                }
                Ok(())
            }
            None => write!(
                f,
                "[{}] {} / {:.0} mm² / {} units: no feasible configuration",
                self.scheme, self.node, self.area_mm2, self.quantity
            ),
        }
    }
}

/// The dense-grid geometry of a [`PortfolioSpace`]: axis lengths plus the
/// index arithmetic that maps between a flat cell index and its
/// per-axis coordinates. Shared by the engine, the sparse readers and the
/// refinement driver so there is exactly one definition of grid order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GridShape {
    pub(crate) nodes: usize,
    pub(crate) areas: usize,
    pub(crate) quantities: usize,
    pub(crate) integrations: usize,
    pub(crate) chiplets: usize,
    pub(crate) flows: usize,
    pub(crate) variants: usize,
}

/// Per-axis coordinates of one grid cell (indices into the space's axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CellIdx {
    pub(crate) node: usize,
    pub(crate) area: usize,
    pub(crate) quantity: usize,
    pub(crate) integration: usize,
    pub(crate) chiplets: usize,
    pub(crate) flow: usize,
    pub(crate) variant: usize,
}

impl GridShape {
    pub(crate) fn of(space: &PortfolioSpace, variants: usize) -> Self {
        GridShape {
            nodes: space.nodes.len(),
            areas: space.areas_mm2.len(),
            quantities: space.quantities.len(),
            integrations: space.integrations.len(),
            chiplets: space.chiplet_counts.len(),
            flows: space.flows.len(),
            variants,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes
            * self.areas
            * self.quantities
            * self.integrations
            * self.chiplets
            * self.flows
            * self.variants
    }

    /// Cells per (node, area, quantity) operating point: the
    /// configuration block the winner tables chunk by.
    pub(crate) fn block(&self) -> usize {
        self.integrations * self.chiplets * self.flows * self.variants
    }

    pub(crate) fn index(&self, c: CellIdx) -> usize {
        (((((c.node * self.areas + c.area) * self.quantities + c.quantity) * self.integrations
            + c.integration)
            * self.chiplets
            + c.chiplets)
            * self.flows
            + c.flow)
            * self.variants
            + c.variant
    }

    pub(crate) fn coords(&self, index: usize) -> CellIdx {
        let variant = index % self.variants;
        let rest = index / self.variants;
        let flow = rest % self.flows;
        let rest = rest / self.flows;
        let chiplets = rest % self.chiplets;
        let rest = rest / self.chiplets;
        let integration = rest % self.integrations;
        let rest = rest / self.integrations;
        let quantity = rest % self.quantities;
        let rest = rest / self.quantities;
        CellIdx {
            node: rest / self.areas,
            area: rest % self.areas,
            quantity,
            integration,
            chiplets,
            flow,
            variant,
        }
    }
}

/// Classifies one configuration's axis compatibility — the single source
/// of truth shared by the evaluation engine (to skip dead cells), the
/// sparse readers (to re-derive [`CellOutcome::Incompatible`] without
/// storing it) and the refinement driver. Returns `None` for a
/// configuration the scheme can actually build.
pub(crate) fn classify(
    space: &PortfolioSpace,
    variant: &SchemeVariant,
    integration: IntegrationKind,
    chiplets: u32,
) -> Option<IncompatibleReason> {
    match variant.scheme {
        ReuseScheme::None => {
            if !integration.is_multi_chip() && chiplets != 1 {
                return Some(IncompatibleReason::MonolithicMultiChip {
                    integration,
                    chiplets,
                });
            }
            if integration.is_multi_chip() && chiplets < 2 {
                return Some(IncompatibleReason::SingleDieMultiChip { integration });
            }
            None
        }
        ReuseScheme::Scms => {
            if !space.scms_multiplicities.contains(&chiplets) {
                return Some(IncompatibleReason::ScmsNonMember {
                    family: ScmsFamily::new(&space.scms_multiplicities),
                    chiplets,
                });
            }
            None
        }
        ReuseScheme::Ocme => {
            if !OCME_MEMBERS.iter().any(|(n, _)| *n == chiplets) {
                return Some(IncompatibleReason::OcmeNonMember { chiplets });
            }
            None
        }
        ReuseScheme::Fsmc => {
            let (sockets, _) = variant.fsmc.expect("FSMC variants carry a situation");
            if chiplets > sockets {
                return Some(IncompatibleReason::FsmcOverflow { sockets, chiplets });
            }
            None
        }
    }
}

/// The outcome of [`explore_portfolio`]: the sparse store of evaluated
/// cells plus the post-processed per-scheme views, all reading as the
/// dense grid in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioResult {
    pub(crate) space: PortfolioSpace,
    variants: Vec<SchemeVariant>,
    params_labels: Vec<String>,
    len: usize,
    /// Evaluated cells only (feasible and infeasible), sorted by flat grid
    /// index. Incompatible and pruned cells are re-derived on read.
    stored: Vec<(usize, CellOutcome)>,
    pub(crate) threads: usize,
    pub(crate) core_evaluations: usize,
}

impl PortfolioResult {
    /// Assembles a result from the sparse list of evaluated cells
    /// (duplicates keep the first entry; order is normalized here).
    pub(crate) fn from_parts(
        space: &PortfolioSpace,
        threads: usize,
        core_evaluations: usize,
        mut stored: Vec<(usize, CellOutcome)>,
    ) -> Self {
        stored.sort_by_key(|entry| entry.0);
        stored.dedup_by_key(|entry| entry.0);
        let variants = space.scheme_variants();
        let params_labels = variants.iter().map(SchemeVariant::params_label).collect();
        let len = space.len();
        debug_assert!(stored.last().is_none_or(|entry| entry.0 < len));
        PortfolioResult {
            space: space.clone(),
            variants,
            params_labels,
            len,
            stored,
            threads,
            core_evaluations,
        }
    }

    /// The space that was explored.
    pub fn space(&self) -> &PortfolioSpace {
        &self.space
    }

    pub(crate) fn shape(&self) -> GridShape {
        GridShape::of(&self.space, self.variants.len())
    }

    /// The sparse store: evaluated cells as `(flat index, outcome)`,
    /// sorted by index. The refinement driver reads partial results
    /// through this.
    pub(crate) fn stored_entries(&self) -> &[(usize, CellOutcome)] {
        &self.stored
    }

    /// Materializes the cell at `idx` with the given outcome.
    fn cell_at(&self, idx: CellIdx, outcome: CellOutcome) -> PortfolioCell {
        PortfolioCell {
            node: self.space.nodes[idx.node].clone(),
            area_mm2: self.space.areas_mm2[idx.area],
            quantity: self.space.quantities[idx.quantity],
            integration: self.space.integrations[idx.integration],
            chiplets: self.space.chiplet_counts[idx.chiplets],
            flow: self.space.flows[idx.flow],
            scheme: self.variants[idx.variant].scheme,
            scheme_params: self.params_labels[idx.variant].clone(),
            outcome,
        }
    }

    /// The outcome of a cell absent from the sparse store: incompatible
    /// (re-derived from its coordinates) or pruned.
    fn unstored_outcome(&self, idx: CellIdx) -> CellOutcome {
        match classify(
            &self.space,
            &self.variants[idx.variant],
            self.space.integrations[idx.integration],
            self.space.chiplet_counts[idx.chiplets],
        ) {
            Some(reason) => CellOutcome::Incompatible(reason),
            None => CellOutcome::Pruned,
        }
    }

    /// Every cell materialized in deterministic grid order (node → area →
    /// quantity → integration → chiplet count → flow → scheme). On huge
    /// grids prefer [`PortfolioResult::iter_cells`] or the artifacts,
    /// which stream out of the sparse store.
    pub fn cells(&self) -> Vec<PortfolioCell> {
        self.iter_cells().collect()
    }

    /// Streams every cell in grid order without materializing the grid.
    pub fn iter_cells(&self) -> impl Iterator<Item = PortfolioCell> + '_ {
        let shape = self.shape();
        let mut cursor = 0usize;
        (0..self.len).map(move |i| {
            while cursor < self.stored.len() && self.stored[cursor].0 < i {
                cursor += 1;
            }
            let outcome = match self.stored.get(cursor) {
                Some((stored_i, outcome)) if *stored_i == i => outcome.clone(),
                _ => self.unstored_outcome(shape.coords(i)),
            };
            self.cell_at(shape.coords(i), outcome)
        })
    }

    /// The number of grid cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid has no cells (never true for a validated space).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of worker threads the evaluation ran on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many full RE/NRE core evaluations the run performed — the
    /// denominator of the caching claim: under [`CorePolicy::Cached`] this
    /// is the number of *distinct* geometry keys, under
    /// [`CorePolicy::Uncached`] the number of evaluable cells.
    pub fn core_evaluations(&self) -> usize {
        self.core_evaluations
    }

    /// The cells that were costed successfully, in grid order.
    pub fn feasible(&self) -> impl Iterator<Item = PortfolioCell> + '_ {
        let shape = self.shape();
        self.stored
            .iter()
            .filter(|(_, outcome)| outcome.is_feasible())
            .map(move |(i, outcome)| self.cell_at(shape.coords(*i), outcome.clone()))
    }

    /// How many cells were costed successfully.
    pub fn feasible_count(&self) -> usize {
        self.stored
            .iter()
            .filter(|(_, outcome)| outcome.is_feasible())
            .count()
    }

    /// How many cells were recorded infeasible (their own geometry, or a
    /// sibling of their reuse family, cannot be manufactured).
    pub fn infeasible_count(&self) -> usize {
        self.stored
            .iter()
            .filter(|(_, outcome)| matches!(outcome, CellOutcome::Infeasible(_)))
            .count()
    }

    /// How many cells combined contradictory axes (SoC × several chiplets,
    /// a chiplet count outside the scheme's family). Computed
    /// combinatorially from the axes — incompatible cells are never
    /// stored.
    pub fn incompatible_count(&self) -> usize {
        let mut dead = 0usize;
        for &integration in &self.space.integrations {
            for &chiplets in &self.space.chiplet_counts {
                for variant in &self.variants {
                    if classify(&self.space, variant, integration, chiplets).is_some() {
                        dead += 1;
                    }
                }
            }
        }
        dead * self.space.nodes.len()
            * self.space.areas_mm2.len()
            * self.space.quantities.len()
            * self.space.flows.len()
    }

    /// How many compatible cells a [`crate::refine`] run skipped (always
    /// 0 for exhaustive runs).
    pub fn pruned_count(&self) -> usize {
        self.len - self.stored.len() - self.incompatible_count()
    }

    /// How many cells the run actually priced — the sparse store's size:
    /// feasible and infeasible evaluations, excluding the pruned and
    /// incompatible cells derived on read. The refinement benches compare
    /// engines on this number (cores are deduplicated separately; see
    /// [`PortfolioResult::core_evaluations`]).
    pub fn evaluated_cells(&self) -> usize {
        self.stored.len()
    }

    /// The per-(node, area, quantity) winner table of one scheme; every
    /// operating point is reported, feasible or not.
    pub fn winners(&self, scheme: ReuseScheme) -> Vec<SchemeWinner> {
        let shape = self.shape();
        let block = shape.block();
        let ops = shape.nodes * shape.areas * shape.quantities;
        let mut out = Vec::with_capacity(ops);
        let mut s = 0usize;
        for op in 0..ops {
            let start = s;
            while s < self.stored.len() && self.stored[s].0 < (op + 1) * block {
                s += 1;
            }
            let entries = &self.stored[start..s];
            // Decode a block-local offset into the configuration axes.
            let local_variant = |local: usize| local % shape.variants;
            let local_flow = |local: usize| (local / shape.variants) % shape.flows;
            let local_chiplets =
                |local: usize| (local / (shape.variants * shape.flows)) % shape.chiplets;
            let local_integration =
                |local: usize| local / (shape.variants * shape.flows * shape.chiplets);
            // First strict minimum in grid order, matching `min_by`'s
            // first-among-equals tie rule on the dense path.
            let mut best: Option<(usize, &Candidate)> = None;
            for (i, outcome) in entries {
                let local = i - op * block;
                if self.variants[local_variant(local)].scheme != scheme {
                    continue;
                }
                if let CellOutcome::Feasible(c) = outcome {
                    let better = match &best {
                        None => true,
                        Some((_, b)) => c.per_unit < b.per_unit,
                    };
                    if better {
                        best = Some((local, c));
                    }
                }
            }
            let best = best.map(|(local, c)| {
                (
                    c.clone(),
                    self.space.flows[local_flow(local)],
                    self.space.chiplet_counts[local_chiplets(local)],
                    local_variant(local),
                )
            });
            let saving_vs_soc_frac = best.as_ref().and_then(|(bc, bflow, bchiplets, bvariant)| {
                let baseline_chiplets = match scheme {
                    ReuseScheme::None => 1,
                    _ => *bchiplets,
                };
                let soc = entries
                    .iter()
                    .find(|(i, _)| {
                        let local = i - op * block;
                        let v = local_variant(local);
                        self.variants[v].scheme == scheme
                            && self.space.integrations[local_integration(local)]
                                == IntegrationKind::Soc
                            && self.space.chiplet_counts[local_chiplets(local)] == baseline_chiplets
                            && self.space.flows[local_flow(local)] == *bflow
                            && self.params_labels[v] == self.params_labels[*bvariant]
                    })
                    .and_then(|(_, outcome)| outcome.candidate());
                match soc {
                    Some(s) if s.per_unit.usd() > 0.0 => {
                        Some((s.per_unit.usd() - bc.per_unit.usd()) / s.per_unit.usd())
                    }
                    _ => None,
                }
            });
            let q_i = op % shape.quantities;
            let a_i = (op / shape.quantities) % shape.areas;
            let n_i = op / (shape.quantities * shape.areas);
            out.push(SchemeWinner {
                scheme,
                node: self.space.nodes[n_i].clone(),
                area_mm2: self.space.areas_mm2[a_i],
                quantity: self.space.quantities[q_i],
                best: best.map(|(c, flow, _, _)| (c, flow)),
                saving_vs_soc_frac,
            });
        }
        out
    }

    /// The winner tables of every scheme in the space, concatenated in
    /// scheme order.
    pub fn all_winners(&self) -> Vec<SchemeWinner> {
        self.space
            .schemes
            .iter()
            .flat_map(|&s| self.winners(s))
            .collect()
    }

    /// The feasible cells of one scheme as `(flat index, candidate)`, in
    /// grid order.
    fn feasible_of(&self, scheme: ReuseScheme) -> Vec<(usize, &Candidate)> {
        let variants = self.variants.len();
        self.stored
            .iter()
            .filter_map(|(i, outcome)| match outcome {
                CellOutcome::Feasible(c) if self.variants[i % variants].scheme == scheme => {
                    Some((*i, c))
                }
                _ => None,
            })
            .collect()
    }

    /// The Pareto front of one scheme over (per-unit cost, chiplet count),
    /// minimizing both; ascending per-unit-cost order.
    pub fn pareto_front(&self, scheme: ReuseScheme) -> Vec<PortfolioCell> {
        let shape = self.shape();
        let feasible = self.feasible_of(scheme);
        let points: Vec<(f64, f64)> = feasible
            .iter()
            .map(|&(i, c)| {
                let idx = shape.coords(i);
                (
                    c.per_unit.usd(),
                    f64::from(self.space.chiplet_counts[idx.chiplets]),
                )
            })
            .collect();
        pareto_min_indices(&points)
            .into_iter()
            .map(|k| {
                let (i, c) = feasible[k];
                self.cell_at(shape.coords(i), CellOutcome::Feasible(c.clone()))
            })
            .collect()
    }

    /// The Pareto front of one scheme over (program total, per-unit
    /// cost), minimizing both: program total is the member system's whole
    /// spend at its quantity (RE plus its amortized NRE share, i.e.
    /// per-unit × units), the ROADMAP's decision-relevant portfolio
    /// trade-off — how much cheaper a unit each extra program dollar
    /// buys. Returned in ascending program-total order.
    pub fn pareto_program(&self, scheme: ReuseScheme) -> Vec<PortfolioCell> {
        let shape = self.shape();
        let feasible = self.feasible_of(scheme);
        let points: Vec<(f64, f64)> = feasible
            .iter()
            .map(|&(i, c)| {
                let idx = shape.coords(i);
                let per_unit = c.per_unit.usd();
                (
                    per_unit * self.space.quantities[idx.quantity] as f64,
                    per_unit,
                )
            })
            .collect();
        pareto_min_indices(&points)
            .into_iter()
            .map(|k| {
                let (i, c) = feasible[k];
                self.cell_at(shape.coords(i), CellOutcome::Feasible(c.clone()))
            })
            .collect()
    }

    /// The column set every grid-shaped artifact shares.
    const GRID_COLUMNS: [&'static str; 12] = [
        "node",
        "area_mm2",
        "quantity",
        "integration",
        "chiplets",
        "flow",
        "scheme",
        "scheme_params",
        "status",
        "per_unit_usd",
        "re_per_unit_usd",
        "detail",
    ];

    /// The one grid-row encoding, shared by the batch artifact and the
    /// streamed-segment artifacts so their bytes can never drift apart.
    fn grid_row(cell: &PortfolioCell) -> [String; 12] {
        let (per_unit, re_per_unit) = match cell.outcome.candidate() {
            Some(c) => (
                format!("{:.6}", c.per_unit.usd()),
                format!("{:.6}", c.re_per_unit.usd()),
            ),
            None => (String::new(), String::new()),
        };
        [
            cell.node.clone(),
            format!("{}", cell.area_mm2),
            cell.quantity.to_string(),
            cell.integration.to_string(),
            cell.chiplets.to_string(),
            cell.flow.to_string(),
            cell.scheme.to_string(),
            cell.scheme_params.clone(),
            cell.outcome.status().to_string(),
            per_unit,
            re_per_unit,
            cell.outcome.detail(),
        ]
    }

    /// The full grid as a streaming [`Artifact`] named `"grid"`: one row
    /// per cell in grid order, never materialized as one string;
    /// byte-identical across thread counts.
    pub fn grid_artifact(&self) -> Artifact<'_> {
        Artifact::new("grid", "grid", &Self::GRID_COLUMNS, move |emit| {
            for cell in self.iter_cells() {
                emit(&Self::grid_row(&cell))?;
            }
            Ok(())
        })
    }

    /// The grid rows of exactly the given flat cell indices, with the
    /// same name, columns and row encoding as
    /// [`PortfolioResult::grid_artifact`] — the segment emitter behind
    /// streamed refinement. Indices should be ascending (each segment is
    /// then internally in grid order); indices absent from the sparse
    /// store are emitted with their derived (pruned or incompatible)
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of the grid's bounds.
    pub fn grid_rows_artifact(&self, indices: Vec<usize>) -> Artifact<'_> {
        Artifact::new("grid", "grid", &Self::GRID_COLUMNS, move |emit| {
            let shape = self.shape();
            for i in indices {
                assert!(i < self.len, "grid row index {i} out of bounds");
                let outcome = match self.stored.binary_search_by_key(&i, |(k, _)| *k) {
                    Ok(s) => self.stored[s].1.clone(),
                    Err(_) => self.unstored_outcome(shape.coords(i)),
                };
                let cell = self.cell_at(shape.coords(i), outcome);
                emit(&Self::grid_row(&cell))?;
            }
            Ok(())
        })
    }

    /// The grid rows of every cell *absent* from the sparse store — the
    /// pruned and incompatible remainder, in grid order. A streamed
    /// refinement emits this after the per-phase segments: the segments
    /// plus this artifact's rows cover every grid row exactly once.
    pub fn grid_unstored_artifact(&self) -> Artifact<'_> {
        Artifact::new("grid", "grid", &Self::GRID_COLUMNS, move |emit| {
            let shape = self.shape();
            let mut cursor = 0usize;
            for i in 0..self.len {
                while cursor < self.stored.len() && self.stored[cursor].0 < i {
                    cursor += 1;
                }
                if matches!(self.stored.get(cursor), Some((stored_i, _)) if *stored_i == i) {
                    continue;
                }
                let cell = self.cell_at(shape.coords(i), self.unstored_outcome(shape.coords(i)));
                emit(&Self::grid_row(&cell))?;
            }
            Ok(())
        })
    }

    /// Every scheme's winner table as one [`Artifact`] named `"winners"`,
    /// concatenated in scheme order.
    pub fn winners_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "winners",
            "winners",
            &[
                "scheme",
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "flow",
                "per_unit_usd",
                "saving_vs_soc",
            ],
            move |emit| {
                for w in self.all_winners() {
                    let (integration, chiplets, flow, per_unit) = match &w.best {
                        Some((c, flow)) => (
                            c.integration.to_string(),
                            c.chiplets.to_string(),
                            flow.to_string(),
                            format!("{:.6}", c.per_unit.usd()),
                        ),
                        None => (String::new(), String::new(), String::new(), String::new()),
                    };
                    emit(&[
                        w.scheme.to_string(),
                        w.node.clone(),
                        format!("{}", w.area_mm2),
                        w.quantity.to_string(),
                        integration,
                        chiplets,
                        flow,
                        per_unit,
                        w.saving_vs_soc_frac
                            .map(|s| format!("{s:.6}"))
                            .unwrap_or_default(),
                    ])?;
                }
                Ok(())
            },
        )
    }

    /// Every scheme's (per-unit cost, chiplet count) Pareto front as one
    /// [`Artifact`] named `"pareto"`, concatenated in scheme order.
    pub fn pareto_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "pareto",
            "pareto",
            &[
                "scheme",
                "scheme_params",
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "flow",
                "per_unit_usd",
            ],
            move |emit| {
                for &scheme in &self.space.schemes {
                    for cell in self.pareto_front(scheme) {
                        let c = cell.outcome.candidate().expect("Pareto cells are feasible");
                        emit(&[
                            cell.scheme.to_string(),
                            cell.scheme_params.clone(),
                            cell.node.clone(),
                            format!("{}", cell.area_mm2),
                            cell.quantity.to_string(),
                            cell.integration.to_string(),
                            cell.chiplets.to_string(),
                            cell.flow.to_string(),
                            format!("{:.6}", c.per_unit.usd()),
                        ])?;
                    }
                }
                Ok(())
            },
        )
    }

    /// Every scheme's [`PortfolioResult::pareto_program`] front as one
    /// [`Artifact`] named `"pareto_program"`, concatenated in scheme
    /// order.
    pub fn pareto_program_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "pareto_program",
            "pareto_program",
            &[
                "scheme",
                "scheme_params",
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "flow",
                "program_total_usd",
                "per_unit_usd",
            ],
            move |emit| {
                for &scheme in &self.space.schemes {
                    for cell in self.pareto_program(scheme) {
                        let c = cell.outcome.candidate().expect("Pareto cells are feasible");
                        emit(&[
                            cell.scheme.to_string(),
                            cell.scheme_params.clone(),
                            cell.node.clone(),
                            format!("{}", cell.area_mm2),
                            cell.quantity.to_string(),
                            cell.integration.to_string(),
                            cell.chiplets.to_string(),
                            cell.flow.to_string(),
                            format!("{:.2}", c.per_unit.usd() * cell.quantity as f64),
                            format!("{:.6}", c.per_unit.usd()),
                        ])?;
                    }
                }
                Ok(())
            },
        )
    }
}

impl fmt::Display for PortfolioResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells ({} feasible, {} infeasible, {} incompatible",
            self.len(),
            self.feasible_count(),
            self.infeasible_count(),
            self.incompatible_count(),
        )?;
        let pruned = self.pruned_count();
        if pruned > 0 {
            write!(f, ", {pruned} pruned")?;
        }
        write!(
            f,
            ") across {} scheme(s) on {} thread(s), {} core evaluation(s)",
            self.space.schemes.len(),
            self.threads,
            self.core_evaluations
        )
    }
}

/// The deduplication key of one core evaluation. `area_bits` carries the
/// exact f64 bits of the per-system (scheme `none`) or per-socket (reuse
/// families) module area, so cells share a core only on *identical*
/// geometry; `variant` is the index into the expanded scheme axis, so
/// different family parameters (FSMC situations, OCME centres) never share
/// a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CoreKey {
    variant: usize,
    node: usize,
    area_bits: u64,
    integration: u8,
    chiplets: u32,
    flow: u8,
}

/// Everything phase B needs to build and evaluate one core.
#[derive(Clone, Copy)]
struct CoreSpec<'a> {
    scheme: ReuseScheme,
    node: &'a str,
    area: Area,
    integration: IntegrationKind,
    chiplets: u32,
    flow: AssemblyFlow,
    /// FSMC `(sockets, chiplet types)` of the cell's variant.
    fsmc: Option<(u32, u32)>,
    /// OCME centre node of the cell's variant.
    center_node: Option<&'a str>,
}

/// A computed core: a standalone candidate or a whole reuse family.
enum CoreValue {
    Single(CandidateCore),
    Family(PortfolioCore),
}

/// How one compatible configuration maps to its core under the active
/// [`CorePolicy`]: a shared, already-registered spec, or a template spec
/// pushed fresh for every cell that uses it.
enum Planned<'a> {
    Shared(usize),
    PerCell(CoreSpec<'a>),
}

fn integration_rank(kind: IntegrationKind) -> u8 {
    match kind {
        IntegrationKind::Soc => 0,
        IntegrationKind::Mcm => 1,
        IntegrationKind::Info => 2,
        IntegrationKind::TwoPointFiveD => 3,
    }
}

fn flow_rank(flow: AssemblyFlow) -> u8 {
    match flow {
        AssemblyFlow::ChipFirst => 0,
        AssemblyFlow::ChipLast => 1,
    }
}

/// The OCME family's chip counts and member names, in portfolio order.
const OCME_MEMBERS: [(u32, &str); 4] = [(1, "C"), (2, "C+1X"), (3, "C+1X+1Y"), (5, "C+2X+2Y")];

/// The core geometry of a compatible configuration: the area the core is
/// designed at (total for a standalone system, per-socket for the reuse
/// families) and the chiplet count that enters the dedup key (0 for
/// families, whose cores cover every member count at once).
fn core_geometry(scheme: ReuseScheme, area_mm2: f64, chiplets: u32) -> (f64, u32) {
    match scheme {
        ReuseScheme::None => (area_mm2, chiplets),
        ReuseScheme::Scms | ReuseScheme::Ocme | ReuseScheme::Fsmc => {
            (area_mm2 / f64::from(chiplets), 0)
        }
    }
}

/// The family member a compatible cell reads out of its
/// [`PortfolioCost`]. Only called for family schemes (`none` cells read
/// their single core directly).
fn member_name(scheme: ReuseScheme, chiplets: u32, soc: bool) -> String {
    let suffix = if soc { "-soc" } else { "" };
    match scheme {
        ReuseScheme::Scms => format!("{chiplets}X{suffix}"),
        ReuseScheme::Ocme => {
            let (_, name) = OCME_MEMBERS
                .iter()
                .find(|(n, _)| *n == chiplets)
                .expect("classified OCME cells are members");
            format!("{name}{suffix}")
        }
        // Every size-s collocation of identical-footprint types costs the
        // same (symmetric usage weights); `sA` is the canonical read-out
        // member.
        ReuseScheme::Fsmc => format!("{chiplets}A{suffix}"),
        ReuseScheme::None => unreachable!("single-system cells have no family member"),
    }
}

/// Evaluates every cell of `space` on `threads` worker threads (`0` = the
/// machine's available parallelism) with core caching enabled.
///
/// # Errors
///
/// See [`explore_portfolio_with`].
pub fn explore_portfolio(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_with(lib, space, threads, CorePolicy::Cached)
}

/// Evaluates every cell of `space` under an explicit [`CorePolicy`].
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] for an invalid space,
/// [`ArchError::Tech`] for an unknown node id, and propagates unexpected
/// engine errors. Per-cell geometric infeasibility and axis contradictions
/// are recorded in the cells, not raised.
pub fn explore_portfolio_with(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    policy: CorePolicy,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_impl(lib, space, threads, policy, None)
}

/// Evaluates every cell of `space` with cores additionally reused *across
/// calls* through `cache`. `tag` names the technology library the caller
/// evaluated under (any collision-resistant fingerprint — the scenario
/// layer uses its canonical library digest); cores computed under one tag
/// are invisible to every other, so a cache can safely serve requests that
/// carry different library overrides.
///
/// Output is byte-identical to [`explore_portfolio`] on the same inputs;
/// only [`PortfolioResult::core_evaluations`] drops, to the number of
/// cores the cache could not supply.
///
/// # Errors
///
/// See [`explore_portfolio_with`]. Hard errors are never cached.
pub fn explore_portfolio_shared(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    cache: &SharedCoreCache,
    tag: [u8; 32],
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_impl(lib, space, threads, CorePolicy::Cached, Some((cache, tag)))
}

/// Maps recoverable per-cell failures (infeasible geometry, yield-model
/// domain) into the per-cell `Err` channel and propagates everything else.
fn soften(result: Result<CoreValue, ArchError>) -> Result<Result<CoreValue, String>, ArchError> {
    match result {
        Ok(value) => Ok(Ok(value)),
        Err(ArchError::Model(e)) => Ok(Err(e.to_string())),
        Err(ArchError::Yield(e)) => Ok(Err(e.to_string())),
        Err(e) => Err(e),
    }
}

fn explore_portfolio_impl(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    policy: CorePolicy,
    shared: Option<(&SharedCoreCache, [u8; 32])>,
) -> Result<PortfolioResult, ArchError> {
    space.validate()?;
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    for center in space.ocme_center_nodes.iter().flatten() {
        lib.node(center).map_err(ArchError::Tech)?;
    }

    // --- Phase A: classify configurations, dedup core keys. --------------
    // Compatibility and geometry depend only on (node, area, integration,
    // chiplets, flow, variant) — never on quantity — so each (node, area)
    // builds its configuration template once and stamps it across the
    // quantity axis, instead of walking all seven loops per cell.
    let mut classify_span = actuary_obs::span!("dse.classify");
    let variants = space.scheme_variants();
    let shape = GridShape::of(space, variants.len());
    let block = shape.block();
    let mut specs: Vec<CoreSpec<'_>> = Vec::new();
    let mut key_index: BTreeMap<CoreKey, usize> = BTreeMap::new();
    // (flat cell index, spec index) for every evaluable cell, in grid order.
    let mut evaluable: Vec<(usize, usize)> = Vec::new();
    let mut template: Vec<Option<Planned<'_>>> = Vec::with_capacity(block);
    for (n_i, node) in space.nodes.iter().enumerate() {
        for (a_i, &area_mm2) in space.areas_mm2.iter().enumerate() {
            template.clear();
            for &integration in &space.integrations {
                for &chiplets in &space.chiplet_counts {
                    for &flow in &space.flows {
                        for (v_i, variant) in variants.iter().enumerate() {
                            if classify(space, variant, integration, chiplets).is_some() {
                                template.push(None);
                                continue;
                            }
                            let (core_area_mm2, key_chiplets) =
                                core_geometry(variant.scheme, area_mm2, chiplets);
                            let area = Area::from_mm2(core_area_mm2)?;
                            let spec = CoreSpec {
                                scheme: variant.scheme,
                                node,
                                area,
                                integration,
                                chiplets: key_chiplets,
                                flow,
                                fsmc: variant.fsmc,
                                center_node: variant.center_node.as_deref(),
                            };
                            template.push(Some(match policy {
                                CorePolicy::Uncached => Planned::PerCell(spec),
                                CorePolicy::Cached => {
                                    let key = CoreKey {
                                        variant: v_i,
                                        node: n_i,
                                        area_bits: area.mm2().to_bits(),
                                        integration: integration_rank(integration),
                                        chiplets: key_chiplets,
                                        flow: flow_rank(flow),
                                    };
                                    Planned::Shared(*key_index.entry(key).or_insert_with(|| {
                                        specs.push(spec);
                                        specs.len() - 1
                                    }))
                                }
                            }));
                        }
                    }
                }
            }
            for q_i in 0..shape.quantities {
                let base = ((n_i * shape.areas + a_i) * shape.quantities + q_i) * block;
                for (off, planned) in template.iter().enumerate() {
                    match planned {
                        None => {}
                        Some(Planned::Shared(spec)) => evaluable.push((base + off, *spec)),
                        Some(Planned::PerCell(spec)) => {
                            // The uncached reference path evaluates every
                            // cell from scratch, including per quantity.
                            specs.push(*spec);
                            evaluable.push((base + off, specs.len() - 1));
                        }
                    }
                }
            }
        }
    }

    classify_span.record("distinct_cores", specs.len() as u64);
    classify_span.record("cells", evaluable.len() as u64);
    drop(classify_span);

    let threads = resolve_threads(threads, shape.len());

    // --- Phase B: evaluate each distinct core once, in parallel. With a
    // shared cache, first serve whatever an earlier call (same library tag)
    // already evaluated, and run only the misses. `core_evaluations`
    // reports fresh work either way.
    let mut evaluate_span = actuary_obs::span!("dse.evaluate");
    type SharedCore = Arc<Result<CoreValue, String>>;
    let (cores, core_evaluations): (Vec<SharedCore>, usize) = match shared {
        None => {
            let core_results = run_chunked(&specs, threads, |_, spec| eval_core(lib, space, spec));
            let mut cores = Vec::with_capacity(core_results.len());
            for result in core_results {
                cores.push(Arc::new(soften(result)?));
            }
            let evaluated = cores.len();
            (cores, evaluated)
        }
        Some((cache, tag)) => {
            let keys: Vec<SharedCoreKey> = specs
                .iter()
                .map(|spec| shared_core_key(&tag, space, spec))
                .collect();
            let mut cores = cache.fetch(&keys);
            let miss_indices: Vec<usize> = cores
                .iter()
                .enumerate()
                .filter_map(|(i, cached)| cached.is_none().then_some(i))
                .collect();
            let miss_specs: Vec<CoreSpec<'_>> = miss_indices.iter().map(|&i| specs[i]).collect();
            let miss_results =
                run_chunked(&miss_specs, threads, |_, spec| eval_core(lib, space, spec));
            let mut fresh = Vec::with_capacity(miss_indices.len());
            for (&i, result) in miss_indices.iter().zip(miss_results) {
                // A hard error aborts here, before `store` — it is never
                // cached.
                let value = Arc::new(soften(result)?);
                cores[i] = Some(Arc::clone(&value));
                fresh.push((keys[i].clone(), value));
            }
            let evaluated = fresh.len();
            cache.store(fresh);
            let cores = cores
                .into_iter()
                .map(|core| core.expect("every core is fetched or freshly evaluated"))
                .collect();
            (cores, evaluated)
        }
    };

    evaluate_span.record("core_evaluations", core_evaluations as u64);
    drop(evaluate_span);

    // --- Phase C: struct-of-arrays amortization, one contiguous pass per -
    // core. Every core owns the list of cells that read it; a worker walks
    // that list once, amortizing each distinct quantity a single time and
    // reading family members out of the same allocation — no shared
    // (core, quantity) map, no per-cell pointer chasing.
    let mut amortize_span = actuary_obs::span!("dse.amortize");
    amortize_span.record("cells", evaluable.len() as u64);
    let mut by_core: Vec<Vec<usize>> = vec![Vec::new(); specs.len()];
    for (j, &(_, spec)) in evaluable.iter().enumerate() {
        by_core[spec].push(j);
    }
    let outcome_groups: Vec<Vec<(usize, CellOutcome)>> =
        run_chunked(&by_core, threads, |core_idx, core_cells| {
            let mut out = Vec::with_capacity(core_cells.len());
            match &*cores[core_idx] {
                Err(reason) => {
                    for &j in core_cells {
                        out.push((j, CellOutcome::Infeasible(reason.clone())));
                    }
                }
                Ok(CoreValue::Single(core)) => {
                    let mut amortized: BTreeMap<u64, Candidate> = BTreeMap::new();
                    for &j in core_cells {
                        let idx = shape.coords(evaluable[j].0);
                        let quantity = space.quantities[idx.quantity];
                        let candidate = amortized
                            .entry(quantity)
                            .or_insert_with(|| core.at_quantity(Quantity::new(quantity)));
                        out.push((j, CellOutcome::Feasible(candidate.clone())));
                    }
                }
                Ok(CoreValue::Family(core)) => {
                    let mut amortized: BTreeMap<u64, PortfolioCost> = BTreeMap::new();
                    for &j in core_cells {
                        let idx = shape.coords(evaluable[j].0);
                        let quantity = space.quantities[idx.quantity];
                        let cost = amortized
                            .entry(quantity)
                            .or_insert_with(|| core.amortize_at(Quantity::new(quantity)));
                        let integration = space.integrations[idx.integration];
                        let chiplets = space.chiplet_counts[idx.chiplets];
                        let soc = integration == IntegrationKind::Soc;
                        let member = member_name(variants[idx.variant].scheme, chiplets, soc);
                        let sc = cost
                            .system(&member)
                            .expect("the family contains every planned member");
                        out.push((
                            j,
                            CellOutcome::Feasible(Candidate {
                                integration,
                                chiplets,
                                per_unit: sc.per_unit_total(),
                                re_per_unit: sc.re().total(),
                            }),
                        ));
                    }
                }
            }
            out
        });

    // Scatter the per-core groups back into evaluable order, pairing each
    // outcome with its flat grid index — the sparse store.
    let mut slots: Vec<Option<CellOutcome>> = vec![None; evaluable.len()];
    for group in outcome_groups {
        for (j, outcome) in group {
            slots[j] = Some(outcome);
        }
    }
    let stored: Vec<(usize, CellOutcome)> = evaluable
        .iter()
        .zip(slots)
        .map(|(&(cell, _), outcome)| (cell, outcome.expect("every evaluable cell was amortized")))
        .collect();

    Ok(PortfolioResult::from_parts(
        space,
        threads,
        core_evaluations,
        stored,
    ))
}

/// Evaluates one core: the standalone candidate or the whole reuse family,
/// at a placeholder quantity of 1 (quantity only enters at amortization).
fn eval_core(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    spec: &CoreSpec<'_>,
) -> Result<CoreValue, ArchError> {
    let soc = spec.integration == IntegrationKind::Soc;
    match spec.scheme {
        ReuseScheme::None => Ok(CoreValue::Single(candidate_core(
            lib,
            spec.node,
            spec.area,
            spec.integration,
            spec.chiplets,
            spec.flow,
        )?)),
        ReuseScheme::Scms => {
            let scms = ScmsSpec {
                chiplet_module_area: spec.area,
                node: NodeId::new(spec.node),
                multiplicities: space.scms_multiplicities.clone(),
                integration: spec.integration,
                quantity_each: Quantity::new(1),
                package_reuse: space.package_reuse,
            };
            let portfolio = if soc {
                scms.soc_portfolio()?
            } else {
                scms.portfolio()?
            };
            Ok(CoreValue::Family(portfolio.core(lib, spec.flow)?))
        }
        ReuseScheme::Ocme => {
            let ocme = OcmeSpec {
                socket_module_area: spec.area,
                node: NodeId::new(spec.node),
                center_node: spec.center_node.map(NodeId::new),
                integration: spec.integration,
                quantity_each: Quantity::new(1),
                package_reuse: space.package_reuse,
            };
            let portfolio = if soc {
                ocme.soc_portfolio()?
            } else {
                ocme.portfolio()?
            };
            Ok(CoreValue::Family(portfolio.core(lib, spec.flow)?))
        }
        ReuseScheme::Fsmc => {
            let (sockets, chiplet_types) = spec.fsmc.expect("FSMC specs carry a situation");
            let fsmc = FsmcSpec {
                sockets,
                chiplet_types,
                socket_module_area: spec.area,
                node: NodeId::new(spec.node),
                integration: spec.integration,
                quantity_each: Quantity::new(1),
            };
            let portfolio = if soc {
                fsmc.soc_portfolio()?
            } else {
                fsmc.portfolio()?
            };
            Ok(CoreValue::Family(portfolio.core(lib, spec.flow)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_model::AssemblyFlow;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn small_space() -> PortfolioSpace {
        PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![200.0, 800.0],
            quantities: vec![500_000, 2_000_000],
            integrations: vec![IntegrationKind::Soc, IntegrationKind::Mcm],
            chiplet_counts: vec![1, 2, 3, 4],
            flows: vec![AssemblyFlow::ChipLast, AssemblyFlow::ChipFirst],
            schemes: ReuseScheme::ALL.to_vec(),
            ..PortfolioSpace::default()
        }
    }

    #[test]
    fn default_space_has_the_documented_grid() {
        let space = PortfolioSpace::default();
        // nodes × areas × quantities × integrations × counts × flows × schemes
        assert_eq!(space.len(), 3 * 9 * 3 * 4 * 5 * 4);
        assert!(!space.is_empty());
        space.validate().unwrap();
    }

    #[test]
    fn grid_shape_round_trips_every_index() {
        let space = small_space();
        let shape = GridShape::of(&space, space.scheme_variants().len());
        assert_eq!(shape.len(), space.len());
        for i in 0..shape.len() {
            assert_eq!(shape.index(shape.coords(i)), i);
        }
    }

    #[test]
    fn every_axis_is_validated_independently() {
        let base = small_space();
        let cases: Vec<(PortfolioSpace, &str)> = vec![
            (
                PortfolioSpace {
                    nodes: vec![],
                    ..base.clone()
                },
                "nodes",
            ),
            (
                PortfolioSpace {
                    flows: vec![],
                    ..base.clone()
                },
                "assembly flows",
            ),
            (
                PortfolioSpace {
                    schemes: vec![],
                    ..base.clone()
                },
                "reuse schemes",
            ),
            (
                PortfolioSpace {
                    scms_multiplicities: vec![],
                    ..base.clone()
                },
                "SCMS multiplicities",
            ),
        ];
        for (space, axis) in cases {
            let err = explore_portfolio(&lib(), &space, 1).expect_err(axis);
            assert!(err.to_string().contains(axis), "{axis}: {err}");
        }
        let dup = PortfolioSpace {
            scms_multiplicities: vec![1, 2, 2],
            ..base.clone()
        };
        assert!(explore_portfolio(&lib(), &dup, 1).is_err());
        let fsmc = PortfolioSpace {
            fsmc_situations: vec![(0, 2)],
            ..base.clone()
        };
        assert!(explore_portfolio(&lib(), &fsmc, 1).is_err());
        let fsmc_dup = PortfolioSpace {
            fsmc_situations: vec![(2, 2), (2, 2)],
            ..base.clone()
        };
        assert!(explore_portfolio(&lib(), &fsmc_dup, 1).is_err());
        let fsmc_empty = PortfolioSpace {
            fsmc_situations: vec![],
            ..base.clone()
        };
        assert!(explore_portfolio(&lib(), &fsmc_empty, 1).is_err());
        let center_dup = PortfolioSpace {
            ocme_center_nodes: vec![None, None],
            ..base.clone()
        };
        assert!(explore_portfolio(&lib(), &center_dup, 1).is_err());
        let center_unknown = PortfolioSpace {
            ocme_center_nodes: vec![Some("9nm".to_string())],
            ..base
        };
        assert!(explore_portfolio(&lib(), &center_unknown, 1).is_err());
    }

    #[test]
    fn fsmc_situation_axis_expands_the_scheme() {
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![320.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: vec![2, 3],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::Fsmc],
            fsmc_situations: vec![(2, 2), (4, 4)],
            ..PortfolioSpace::default()
        };
        assert_eq!(space.scheme_variants().len(), 2);
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(result.len(), 2 * 2);
        let cell = |chiplets: u32, params: &str| {
            result
                .cells()
                .into_iter()
                .find(|c| c.chiplets == chiplets && c.scheme_params == params)
                .unwrap()
        };
        // 3 chiplets overflow the 2-socket package but fit the 4-socket one.
        assert!(matches!(
            cell(3, "k=2,n=2").outcome,
            CellOutcome::Incompatible(_)
        ));
        assert!(cell(3, "k=4,n=4").outcome.is_feasible());
        // Size-2 collocations are feasible in both situations, and the
        // bigger family amortizes its NRE over more systems.
        let p22 = cell(2, "k=2,n=2").outcome.candidate().cloned().unwrap();
        let p44 = cell(2, "k=4,n=4").outcome.candidate().cloned().unwrap();
        assert!(
            p44.per_unit < p22.per_unit,
            "more collocations must amortize further: {} vs {}",
            p44.per_unit,
            p22.per_unit
        );
    }

    #[test]
    fn ocme_center_axis_prices_the_heterogeneous_family() {
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![160.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: vec![1],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::Ocme],
            ocme_center_nodes: vec![None, Some("14nm".to_string())],
            package_reuse: true,
            ..PortfolioSpace::default()
        };
        assert_eq!(space.scheme_variants().len(), 2);
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        let per_unit = |params: &str| {
            result
                .cells()
                .iter()
                .find(|c| c.scheme_params == params)
                .and_then(|c| c.outcome.candidate())
                .map(|c| c.per_unit.usd())
                .unwrap_or_else(|| panic!("feasible cell for {params:?}"))
        };
        // §5.2: the single-C system nearly halves with a mature-node centre.
        assert!(
            per_unit("center=14nm") < per_unit(""),
            "the mature-node centre must be cheaper"
        );
    }

    #[test]
    fn grid_is_exhaustive_and_deterministic_across_threads() {
        let lib = lib();
        let space = small_space();
        let serial = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(serial.len(), space.len());
        assert_eq!(
            serial.feasible_count() + serial.infeasible_count() + serial.incompatible_count(),
            serial.len()
        );
        assert_eq!(serial.pruned_count(), 0, "exhaustive runs prune nothing");
        for threads in [2, 4, 8] {
            let parallel = explore_portfolio(&lib, &space, threads).unwrap();
            assert_eq!(serial.cells(), parallel.cells(), "threads={threads}");
            assert_eq!(
                serial.grid_artifact().csv(),
                parallel.grid_artifact().csv(),
                "threads={threads}"
            );
            assert_eq!(
                serial.winners_artifact().csv(),
                parallel.winners_artifact().csv()
            );
        }
    }

    #[test]
    fn cached_and_uncached_agree_byte_for_byte_with_fewer_evaluations() {
        let lib = lib();
        let space = small_space();
        let cached = explore_portfolio_with(&lib, &space, 2, CorePolicy::Cached).unwrap();
        let uncached = explore_portfolio_with(&lib, &space, 2, CorePolicy::Uncached).unwrap();
        assert_eq!(cached.cells(), uncached.cells());
        assert_eq!(cached.grid_artifact().csv(), uncached.grid_artifact().csv());
        assert!(
            cached.core_evaluations() * 2 <= uncached.core_evaluations(),
            "cache must at least halve the full evaluations: {} vs {}",
            cached.core_evaluations(),
            uncached.core_evaluations()
        );
    }

    #[test]
    fn mostly_incompatible_grids_stay_sparse() {
        // A family scheme over a wide chiplet-count axis is mostly dead
        // cells; the store must hold only the evaluated members, while the
        // readers still see (and account for) every cell.
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![400.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: (1..=50).collect(),
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::Scms],
            ..PortfolioSpace::default()
        };
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(result.len(), 50);
        // SCMS members are {1, 2, 4}: 47 of 50 counts are incompatible.
        assert_eq!(result.incompatible_count(), 47);
        assert!(
            result.stored_entries().len() <= 3,
            "only evaluated cells may be stored, got {}",
            result.stored_entries().len()
        );
        let cells = result.cells();
        assert_eq!(cells.len(), 50);
        assert_eq!(
            cells
                .iter()
                .filter(|c| matches!(c.outcome, CellOutcome::Incompatible(_)))
                .count(),
            47
        );
        // Re-derived incompatible cells still render the historical reason.
        let dead = cells
            .iter()
            .find(|c| c.chiplets == 3)
            .expect("the grid is dense on read");
        assert_eq!(
            dead.outcome.detail(),
            "SCMS family [1, 2, 4] has no 3-chiplet member"
        );
    }

    #[test]
    fn scms_member_matches_the_direct_reuse_portfolio() {
        // A cell must read out exactly what costing the ScmsSpec family
        // directly reports for the same member — the grid adds nothing.
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![800.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: vec![4],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::Scms],
            ..PortfolioSpace::default()
        };
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(result.feasible_count(), 1);
        let cells = result.cells();
        let cell = &cells[0];
        let grid = cell.outcome.candidate().unwrap();

        let spec = ScmsSpec {
            chiplet_module_area: Area::from_mm2(200.0).unwrap(),
            node: NodeId::new("7nm"),
            multiplicities: vec![1, 2, 4],
            integration: IntegrationKind::Mcm,
            quantity_each: Quantity::new(500_000),
            package_reuse: false,
        };
        let direct = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let member = direct.system("4X").unwrap();
        assert_eq!(grid.per_unit, member.per_unit_total());
        assert_eq!(grid.re_per_unit, member.re().total());
    }

    #[test]
    fn family_membership_is_enforced_per_scheme() {
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![400.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: vec![3, 5, 6],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::Scms, ReuseScheme::Ocme, ReuseScheme::Fsmc],
            ..PortfolioSpace::default()
        };
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        let outcome_of = |chiplets: u32, scheme: ReuseScheme| {
            result
                .cells()
                .into_iter()
                .find(|c| c.chiplets == chiplets && c.scheme == scheme)
                .unwrap()
                .outcome
        };
        // SCMS family is {1,2,4}: 3, 5 and 6 are all incompatible.
        for m in [3, 5, 6] {
            assert!(
                matches!(
                    outcome_of(m, ReuseScheme::Scms),
                    CellOutcome::Incompatible(_)
                ),
                "scms x{m}"
            );
        }
        // OCME has a 3-chip (C+1X+1Y) and 5-chip (C+2X+2Y) member, not 6.
        assert!(outcome_of(3, ReuseScheme::Ocme).is_feasible());
        assert!(outcome_of(5, ReuseScheme::Ocme).is_feasible());
        assert!(matches!(
            outcome_of(6, ReuseScheme::Ocme),
            CellOutcome::Incompatible(_)
        ));
        // FSMC holds up to 4 sockets: size 3 fits, 5 and 6 do not.
        assert!(outcome_of(3, ReuseScheme::Fsmc).is_feasible());
        for m in [5, 6] {
            assert!(
                matches!(
                    outcome_of(m, ReuseScheme::Fsmc),
                    CellOutcome::Incompatible(_)
                ),
                "fsmc x{m}"
            );
        }
    }

    #[test]
    fn reuse_schemes_beat_the_standalone_baseline_at_grid_scale() {
        // The paper's headline: amortizing NRE across a derivative family
        // undercuts building each system standalone (Figs. 8-10).
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![800.0],
            quantities: vec![500_000],
            integrations: vec![IntegrationKind::Soc, IntegrationKind::Mcm],
            // 2 is a member of every family: SCMS 2X, OCME C+1X, FSMC size 2.
            chiplet_counts: vec![2],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: ReuseScheme::ALL.to_vec(),
            ..PortfolioSpace::default()
        };
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        let per_unit = |scheme: ReuseScheme| {
            result
                .cells()
                .iter()
                .find(|c| c.scheme == scheme && c.integration == IntegrationKind::Mcm)
                .and_then(|c| c.outcome.candidate())
                .map(|c| c.per_unit.usd())
                .expect("feasible MCM cell")
        };
        let standalone = per_unit(ReuseScheme::None);
        for scheme in [ReuseScheme::Scms, ReuseScheme::Ocme, ReuseScheme::Fsmc] {
            assert!(
                per_unit(scheme) < standalone,
                "{scheme} must amortize NRE below the standalone {standalone}"
            );
        }
    }

    #[test]
    fn winner_tables_and_pareto_fronts_are_per_scheme() {
        let lib = lib();
        let result = explore_portfolio(&lib, &small_space(), 2).unwrap();
        for &scheme in &ReuseScheme::ALL {
            let winners = result.winners(scheme);
            // One row per (node, area, quantity) operating point.
            assert_eq!(winners.len(), 2 * 2, "{scheme}"); // areas × quantities
            for w in &winners {
                assert_eq!(w.scheme, scheme);
                if let Some((c, _flow)) = &w.best {
                    assert!(c.per_unit.usd() > 0.0);
                }
            }
            let front = result.pareto_front(scheme);
            assert!(!front.is_empty(), "{scheme}");
            assert!(front.iter().all(|c| c.scheme == scheme));
        }
        assert_eq!(result.all_winners().len(), 4 * 4);
    }

    #[test]
    fn flow_axis_exposes_the_section_5_flow_comparison() {
        // Chip-first and chip-last cells of the same 2.5D geometry must
        // differ (the flows price the interposer stage differently — for
        // interposer-less MCM they coincide by Eq. (5)) and chip-last must
        // win, the §5 conclusion.
        let lib = lib();
        let space = PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![800.0],
            quantities: vec![2_000_000],
            integrations: vec![IntegrationKind::TwoPointFiveD],
            chiplet_counts: vec![4],
            flows: vec![AssemblyFlow::ChipLast, AssemblyFlow::ChipFirst],
            schemes: vec![ReuseScheme::None],
            ..PortfolioSpace::default()
        };
        let result = explore_portfolio(&lib, &space, 1).unwrap();
        let cell = |flow: AssemblyFlow| {
            result
                .cells()
                .iter()
                .find(|c| c.flow == flow)
                .and_then(|c| c.outcome.candidate())
                .expect("feasible")
                .per_unit
                .usd()
        };
        assert!(
            cell(AssemblyFlow::ChipLast) < cell(AssemblyFlow::ChipFirst),
            "chip-last must avoid wasting KGDs on interposer defects"
        );
    }

    #[test]
    fn csv_shapes_are_machine_readable() {
        let result = explore_portfolio(&lib(), &small_space(), 2).unwrap();
        let grid = result.grid_artifact().csv();
        assert_eq!(
            grid.lines().next().unwrap(),
            "node,area_mm2,quantity,integration,chiplets,flow,scheme,scheme_params,status,\
             per_unit_usd,re_per_unit_usd,detail"
        );
        assert_eq!(grid.lines().count(), result.len() + 1);
        let winners = result.winners_artifact().csv();
        assert_eq!(
            winners.lines().next().unwrap(),
            "scheme,node,area_mm2,quantity,integration,chiplets,flow,per_unit_usd,saving_vs_soc"
        );
        assert_eq!(winners.lines().count(), 4 * 4 + 1);
        // Streaming into a sink and materializing produce the same bytes.
        let mut streamed = String::new();
        result.grid_artifact().write_csv_to(&mut streamed).unwrap();
        assert_eq!(streamed, grid);
        let pareto = result.pareto_artifact().csv();
        assert_eq!(
            pareto.lines().next().unwrap(),
            "scheme,scheme_params,node,area_mm2,quantity,integration,chiplets,flow,per_unit_usd"
        );
        let front_rows: usize = ReuseScheme::ALL
            .iter()
            .map(|&s| result.pareto_front(s).len())
            .sum();
        assert_eq!(pareto.lines().count(), front_rows + 1);
    }

    #[test]
    fn program_pareto_is_per_scheme_and_non_dominated() {
        let result = explore_portfolio(&lib(), &small_space(), 2).unwrap();
        for &scheme in &ReuseScheme::ALL {
            let front = result.pareto_program(scheme);
            assert!(!front.is_empty(), "{scheme}");
            assert!(front.iter().all(|c| c.scheme == scheme), "{scheme}");
            for pair in front.windows(2) {
                let (a, b) = (
                    pair[0].outcome.candidate().unwrap(),
                    pair[1].outcome.candidate().unwrap(),
                );
                assert!(
                    a.per_unit.usd() * pair[0].quantity as f64
                        <= b.per_unit.usd() * pair[1].quantity as f64
                );
                assert!(a.per_unit > b.per_unit, "{scheme}: dominated point kept");
            }
        }
        let program_csv = result.pareto_program_artifact().csv();
        assert_eq!(
            program_csv.lines().next().unwrap(),
            "scheme,scheme_params,node,area_mm2,quantity,integration,chiplets,flow,\
             program_total_usd,per_unit_usd"
        );
    }

    #[test]
    fn scheme_labels_round_trip() {
        for &s in &ReuseScheme::ALL {
            assert_eq!(s.to_string(), s.label());
        }
        assert_eq!(ReuseScheme::Scms.to_string(), "scms");
    }

    /// All three artifact renderings of a result, for byte-identity checks.
    fn render(result: &PortfolioResult) -> String {
        format!(
            "{}\n{}\n{}",
            result.grid_artifact().csv(),
            result.winners_artifact().csv(),
            result.pareto_artifact().csv()
        )
    }

    #[test]
    fn shared_cache_is_byte_identical_and_skips_warm_cores() {
        let lib = lib();
        let space = small_space();
        let reference = explore_portfolio(&lib, &space, 1).unwrap();

        let cache = SharedCoreCache::new(1024);
        let cold = explore_portfolio_shared(&lib, &space, 1, &cache, [7; 32]).unwrap();
        assert_eq!(render(&cold), render(&reference));
        assert_eq!(cold.core_evaluations(), reference.core_evaluations());

        let warm = explore_portfolio_shared(&lib, &space, 1, &cache, [7; 32]).unwrap();
        assert_eq!(render(&warm), render(&reference));
        assert_eq!(
            warm.core_evaluations(),
            0,
            "warm rerun re-evaluates nothing"
        );

        let stats = cache.stats();
        assert_eq!(stats.misses, reference.core_evaluations() as u64);
        assert_eq!(stats.hits, reference.core_evaluations() as u64);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, reference.core_evaluations());
    }

    #[test]
    fn shared_cache_reuses_overlapping_spaces() {
        let lib = lib();
        let cache = SharedCoreCache::new(1024);
        let first = small_space();
        explore_portfolio_shared(&lib, &first, 1, &cache, [0; 32]).unwrap();

        // Same nodes/areas/schemes, different quantities and one new area:
        // only the new area's cores need evaluating (quantity is not part
        // of a core).
        let second = PortfolioSpace {
            areas_mm2: vec![200.0, 400.0, 800.0],
            quantities: vec![100_000, 10_000_000],
            ..small_space()
        };
        let overlapping = explore_portfolio_shared(&lib, &second, 1, &cache, [0; 32]).unwrap();
        let from_scratch = explore_portfolio(&lib, &second, 1).unwrap();
        assert_eq!(render(&overlapping), render(&from_scratch));
        assert!(
            overlapping.core_evaluations() < from_scratch.core_evaluations(),
            "{} cores re-evaluated out of {}",
            overlapping.core_evaluations(),
            from_scratch.core_evaluations()
        );
        assert!(
            overlapping.core_evaluations() > 0,
            "the 400 mm² cores are new"
        );
    }

    #[test]
    fn shared_cache_isolates_library_tags() {
        let lib = lib();
        let space = small_space();
        let cache = SharedCoreCache::new(1024);
        let a = explore_portfolio_shared(&lib, &space, 1, &cache, [1; 32]).unwrap();
        let b = explore_portfolio_shared(&lib, &space, 1, &cache, [2; 32]).unwrap();
        assert_eq!(
            a.core_evaluations(),
            b.core_evaluations(),
            "a different library tag must not hit the first tag's cores"
        );
    }

    #[test]
    fn shared_cache_honors_its_capacity_bound() {
        let lib = lib();
        let space = small_space();
        let reference = explore_portfolio(&lib, &space, 1).unwrap();
        assert!(reference.core_evaluations() > 4);

        let cache = SharedCoreCache::new(4);
        let result = explore_portfolio_shared(&lib, &space, 1, &cache, [0; 32]).unwrap();
        assert_eq!(render(&result), render(&reference));
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "occupancy stays at the bound");
        assert_eq!(
            stats.evictions,
            reference.core_evaluations() as u64 - 4,
            "everything over the bound was evicted"
        );

        // Disabled cache: nothing retained, results still correct.
        let off = SharedCoreCache::new(0);
        let uncachable = explore_portfolio_shared(&lib, &space, 1, &off, [0; 32]).unwrap();
        assert_eq!(render(&uncachable), render(&reference));
        assert_eq!(off.stats().entries, 0);
    }
}
