//! Generic parameter sweeps: area and quantity grids evaluated against any
//! cost function, with CSV-ready results.

use actuary_arch::ArchError;
use actuary_units::{Area, Artifact, Quantity};

/// One sampled point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (mm² or units, depending on the sweep).
    // lint:allow(unit-suffix): the axis unit is the sweep's own, named by x_label
    pub x: f64,
    /// One value per configured series, in series order.
    pub values: Vec<f64>,
}

/// A completed sweep: series names plus sampled points.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    series: Vec<String>,
    points: Vec<SweepPoint>,
    x_label: String,
}

impl Sweep {
    /// The series names.
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// The sampled points in x order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The label of the swept parameter.
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// The values of one series across the sweep.
    ///
    /// Returns `None` if the series name is unknown.
    pub fn series_values(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.series.iter().position(|s| s == name)?;
        Some(self.points.iter().map(|p| (p.x, p.values[idx])).collect())
    }

    /// The first point (in x order) where series `a` drops below series
    /// `b` *after* having been at or above it — a discrete sign-change
    /// detector.
    ///
    /// A series that simply starts below the other never crossed it, so no
    /// point is reported (use [`Sweep::first_below`] for the weaker "first
    /// point where `a < b`" question). Returns `None` if either series name
    /// is unknown or no sign change occurs on the grid.
    pub fn first_crossover(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.series.iter().position(|s| s == a)?;
        let ib = self.series.iter().position(|s| s == b)?;
        let mut was_at_or_above = false;
        for p in &self.points {
            if p.values[ia] < p.values[ib] {
                if was_at_or_above {
                    return Some(p.x);
                }
            } else {
                was_at_or_above = true;
            }
        }
        None
    }

    /// The first point (in x order) where series `a` is below series `b`,
    /// whether or not `a` was ever at or above `b` before it.
    ///
    /// Returns `None` if either series name is unknown or `a` never drops
    /// below `b`.
    pub fn first_below(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.series.iter().position(|s| s == a)?;
        let ib = self.series.iter().position(|s| s == b)?;
        self.points
            .iter()
            .find(|p| p.values[ia] < p.values[ib])
            .map(|p| p.x)
    }

    /// The sweep as a streaming [`Artifact`] (kind `"sweep"`): the x
    /// column plus one column per series, one row per sampled point.
    pub fn artifact(&self, name: impl Into<String>) -> Artifact<'_> {
        let mut columns: Vec<&str> = Vec::with_capacity(1 + self.series.len());
        columns.push(self.x_label.as_str());
        columns.extend(self.series.iter().map(String::as_str));
        Artifact::new(name, "sweep", &columns, move |emit| {
            for p in &self.points {
                let mut row = Vec::with_capacity(1 + p.values.len());
                row.push(format!("{}", p.x));
                row.extend(p.values.iter().map(|v| format!("{v:.6}")));
                emit(&row)?;
            }
            Ok(())
        })
    }
}

/// Sweeps die/module area over `areas_mm2`, evaluating every series
/// function at each point.
///
/// # Errors
///
/// Propagates errors from the series functions; rejects empty grids or
/// series lists.
///
/// # Examples
///
/// ```
/// use actuary_dse::sweep::sweep_area;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sweep = sweep_area(
///     &[100.0, 200.0, 300.0],
///     vec![
///         ("linear".to_string(), Box::new(|a: Area| Ok(a.mm2()))),
///         ("quadratic".to_string(), Box::new(|a: Area| Ok(a.mm2() * a.mm2()))),
///     ],
/// )?;
/// assert_eq!(sweep.points().len(), 3);
/// assert_eq!(sweep.series().len(), 2);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::type_complexity)]
pub fn sweep_area(
    areas_mm2: &[f64],
    mut series: Vec<(String, Box<dyn FnMut(Area) -> Result<f64, ArchError> + '_>)>,
) -> Result<Sweep, ArchError> {
    if areas_mm2.is_empty() || series.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: "sweep needs at least one point and one series".to_string(),
        });
    }
    let mut points = Vec::with_capacity(areas_mm2.len());
    for &mm2 in areas_mm2 {
        let area = Area::from_mm2(mm2)?;
        let mut values = Vec::with_capacity(series.len());
        for (_, f) in series.iter_mut() {
            values.push(f(area)?);
        }
        points.push(SweepPoint { x: mm2, values });
    }
    Ok(Sweep {
        series: series.into_iter().map(|(name, _)| name).collect(),
        points,
        x_label: "area_mm2".to_string(),
    })
}

/// Sweeps production quantity over `quantities`, evaluating every series
/// function at each point.
///
/// # Errors
///
/// Propagates errors from the series functions; rejects empty grids or
/// series lists.
#[allow(clippy::type_complexity)]
pub fn sweep_quantity(
    quantities: &[u64],
    mut series: Vec<(
        String,
        Box<dyn FnMut(Quantity) -> Result<f64, ArchError> + '_>,
    )>,
) -> Result<Sweep, ArchError> {
    if quantities.is_empty() || series.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: "sweep needs at least one point and one series".to_string(),
        });
    }
    let mut points = Vec::with_capacity(quantities.len());
    for &q in quantities {
        let quantity = Quantity::new(q);
        let mut values = Vec::with_capacity(series.len());
        for (_, f) in series.iter_mut() {
            values.push(f(quantity)?);
        }
        points.push(SweepPoint {
            x: q as f64,
            values,
        });
    }
    Ok(Sweep {
        series: series.into_iter().map(|(name, _)| name).collect(),
        points,
        x_label: "quantity".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
    use actuary_tech::{IntegrationKind, TechLibrary};

    #[test]
    fn area_sweep_basics() {
        let sweep = sweep_area(
            &[10.0, 20.0],
            vec![("id".to_string(), Box::new(|a: Area| Ok(a.mm2())))],
        )
        .unwrap();
        assert_eq!(sweep.points().len(), 2);
        assert_eq!(
            sweep.series_values("id").unwrap(),
            vec![(10.0, 10.0), (20.0, 20.0)]
        );
        assert!(sweep.series_values("nope").is_none());
        assert_eq!(sweep.x_label(), "area_mm2");
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(sweep_area(&[], vec![("x".to_string(), Box::new(|_| Ok(0.0)))]).is_err());
        assert!(sweep_area(&[1.0], vec![]).is_err());
        assert!(sweep_quantity(&[], vec![("x".to_string(), Box::new(|_| Ok(0.0)))]).is_err());
    }

    #[test]
    fn csv_output_shape() {
        let sweep = sweep_quantity(
            &[100, 200],
            vec![(
                "cost".to_string(),
                Box::new(|q: Quantity| Ok(1.0e6 / q.as_f64())),
            )],
        )
        .unwrap();
        let artifact = sweep.artifact("s");
        assert_eq!(artifact.name(), "s");
        assert_eq!(artifact.kind(), "sweep");
        let csv = artifact.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "quantity,cost");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn crossover_detection() {
        let sweep = sweep_area(
            &[100.0, 200.0, 300.0, 400.0],
            vec![
                (
                    "falling".to_string(),
                    Box::new(|a: Area| Ok(1000.0 - 2.0 * a.mm2())),
                ),
                ("flat".to_string(), Box::new(|_| Ok(500.0))),
            ],
        )
        .unwrap();
        // falling < flat first at a = 300 (1000-600=400 < 500).
        assert_eq!(sweep.first_crossover("falling", "flat"), Some(300.0));
        assert_eq!(sweep.first_crossover("flat", "nope"), None);
        // `first_below` keeps the old "first point where a < b" semantics.
        assert_eq!(sweep.first_below("falling", "flat"), Some(300.0));
        assert_eq!(sweep.first_below("flat", "falling"), Some(100.0));
        assert_eq!(sweep.first_below("flat", "nope"), None);
    }

    #[test]
    fn no_crossover_without_a_sign_change() {
        // Regression: `first_crossover` used to report a "crossover" at the
        // very first grid point when series `a` started below `b`, even
        // though no sign change ever happened.
        let sweep = sweep_area(
            &[100.0, 200.0, 300.0, 400.0],
            vec![
                (
                    "falling".to_string(),
                    Box::new(|a: Area| Ok(1000.0 - 2.0 * a.mm2())),
                ),
                ("flat".to_string(), Box::new(|_| Ok(500.0))),
            ],
        )
        .unwrap();
        // flat starts below falling (500 < 800) and only moves further
        // ahead — flat never drops below falling *after* having been at or
        // above it, so there is no flat-under-falling crossover.
        assert_eq!(sweep.first_crossover("flat", "falling"), None);
        assert_eq!(sweep.first_below("flat", "falling"), Some(100.0));
    }

    /// The paper's Figure 4 turning point, rediscovered with the generic
    /// sweep machinery.
    #[test]
    fn soc_vs_mcm_sweep_reproduces_turning_point() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let node = lib.node("5nm").unwrap();
        let soc_pkg = lib.packaging(IntegrationKind::Soc).unwrap();
        let mcm_pkg = lib.packaging(IntegrationKind::Mcm).unwrap();
        let grid: Vec<f64> = (1..=9).map(|i| i as f64 * 100.0).collect();
        let sweep = sweep_area(
            &grid,
            vec![
                (
                    "mcm2".to_string(),
                    Box::new(|a: Area| {
                        let die = node.d2d().inflate_module_area(a / 2.0)?;
                        Ok(re_cost(
                            &[DiePlacement::new(node, die, 2)],
                            mcm_pkg,
                            AssemblyFlow::ChipLast,
                        )?
                        .total()
                        .usd())
                    }),
                ),
                (
                    "soc".to_string(),
                    Box::new(|a: Area| {
                        Ok(re_cost(
                            &[DiePlacement::new(node, a, 1)],
                            soc_pkg,
                            AssemblyFlow::ChipLast,
                        )?
                        .total()
                        .usd())
                    }),
                ),
            ],
        )
        .unwrap();
        let crossover = sweep
            .first_crossover("mcm2", "soc")
            .expect("5nm must cross");
        assert!(
            crossover <= 400.0,
            "5nm MCM should win early, got {crossover}"
        );
    }
}
