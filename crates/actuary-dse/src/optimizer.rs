//! Single-system architecture optimizer: which integration scheme, how many
//! chiplets.
//!
//! Answers §6's first takeaway mechanically for a single system (no reuse):
//! evaluate every (integration kind, chiplet count) configuration of a
//! monolithic module area and return the cheapest per-unit total.

use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_arch::{partition::equal_chiplets, ArchError, Portfolio, PortfolioCore, System};
use actuary_model::AssemblyFlow;
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::{Area, Money, Quantity};

/// The search space of [`recommend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Chiplet counts to consider for multi-chip schemes (the paper's §6
    /// advice: "two or three chiplets is usually sufficient", so the
    /// default probes 2–5).
    pub chiplet_counts: Vec<u32>,
    /// Integration kinds to consider (all multi-chip kinds by default; the
    /// monolithic SoC is always evaluated as the baseline).
    pub integrations: Vec<IntegrationKind>,
    /// Assembly flow (chip-last by default, the paper's choice).
    pub flow: AssemblyFlow,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            chiplet_counts: vec![2, 3, 4, 5],
            integrations: IntegrationKind::MULTI_CHIP.to_vec(),
            flow: AssemblyFlow::ChipLast,
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Integration scheme.
    pub integration: IntegrationKind,
    /// Number of chiplets (1 for the monolithic SoC).
    pub chiplets: u32,
    /// Per-unit total cost (RE + amortized NRE).
    pub per_unit: Money,
    /// Per-unit RE only.
    pub re_per_unit: Money,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} chiplets: {} / unit (RE {})",
            self.integration, self.chiplets, self.per_unit, self.re_per_unit
        )
    }
}

/// The optimizer's output: the winner plus every evaluated candidate
/// (sorted by per-unit cost ascending) for transparency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Winning integration scheme.
    pub integration: IntegrationKind,
    /// Winning chiplet count (1 = stay monolithic).
    pub chiplets: u32,
    /// Winning per-unit cost.
    pub per_unit: Money,
    /// All evaluated candidates, cheapest first.
    pub candidates: Vec<Candidate>,
}

impl Recommendation {
    /// The monolithic baseline candidate.
    pub fn soc_baseline(&self) -> Option<&Candidate> {
        self.candidates
            .iter()
            .find(|c| c.integration == IntegrationKind::Soc)
    }

    /// Relative saving of the winner vs the monolithic baseline
    /// (`0.25` = 25 % cheaper). Zero when the baseline wins.
    pub fn saving_vs_soc(&self) -> f64 {
        match self.soc_baseline() {
            Some(soc) if soc.per_unit.usd() > 0.0 => {
                (soc.per_unit.usd() - self.per_unit.usd()) / soc.per_unit.usd()
            }
            _ => 0.0,
        }
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "build {} chiplet(s) on {} at {} / unit ({:.1}% vs monolithic)",
            self.chiplets,
            self.integration,
            self.per_unit,
            self.saving_vs_soc() * 100.0
        )
    }
}

/// The quantity-independent part of one candidate evaluation: the RE
/// breakdown and NRE entity totals of the configured system, computed once
/// and re-amortizable over any production quantity.
///
/// This is the expensive half of [`evaluate_candidate`] (yield models,
/// wafer gridding); [`CandidateCore::at_quantity`] is the cheap half.
/// Exploration grids cache cores keyed on geometry, which removes the
/// quantity axis from the evaluation cost entirely.
#[derive(Debug, Clone)]
pub struct CandidateCore {
    integration: IntegrationKind,
    chiplets: u32,
    core: PortfolioCore,
}

impl CandidateCore {
    /// Amortizes the cached core at `quantity`, producing the same
    /// [`Candidate`] as [`evaluate_candidate`] — byte for byte, because
    /// both run the identical [`PortfolioCore`] arithmetic.
    pub fn at_quantity(&self, quantity: Quantity) -> Candidate {
        let cost = self.core.amortize_at(quantity);
        let sc = &cost.systems()[0];
        Candidate {
            integration: self.integration,
            chiplets: self.chiplets,
            per_unit: sc.per_unit_total(),
            re_per_unit: sc.re().total(),
        }
    }
}

/// Computes the quantity-independent [`CandidateCore`] of one
/// (integration, chiplet count) configuration of a single system with
/// `module_area` of logic at `node_id`.
///
/// # Errors
///
/// Propagates architecture and cost-engine errors.
pub fn candidate_core(
    lib: &TechLibrary,
    node_id: &str,
    module_area: Area,
    integration: IntegrationKind,
    chiplets: u32,
    flow: AssemblyFlow,
) -> Result<CandidateCore, ArchError> {
    let chips = equal_chiplets("opt", node_id, module_area, chiplets)?;
    let mut builder = System::builder("opt-sys", integration);
    for chip in chips {
        builder = builder.chip(chip, 1);
    }
    let system = builder.build()?;
    let core = Portfolio::new(vec![system]).core(lib, flow)?;
    Ok(CandidateCore {
        integration,
        chiplets,
        core,
    })
}

/// Evaluates one (integration, chiplet count) configuration of a single
/// system with `module_area` of logic at `node_id`, producing its per-unit
/// total cost at `quantity`.
///
/// Implemented as [`candidate_core`] followed by
/// [`CandidateCore::at_quantity`], so grids that cache the core across
/// quantities reproduce this function exactly.
///
/// # Errors
///
/// Propagates architecture and cost-engine errors.
pub fn evaluate_candidate(
    lib: &TechLibrary,
    node_id: &str,
    module_area: Area,
    quantity: Quantity,
    integration: IntegrationKind,
    chiplets: u32,
    flow: AssemblyFlow,
) -> Result<Candidate, ArchError> {
    Ok(
        candidate_core(lib, node_id, module_area, integration, chiplets, flow)?
            .at_quantity(quantity),
    )
}

/// Searches the space and returns the cheapest configuration for a single
/// system of `module_area` at `node_id`, produced `quantity` times.
///
/// Configurations whose dies exceed the wafer or whose interposer cannot be
/// manufactured are skipped silently (they are simply infeasible).
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] if the search space is empty
/// or no configuration is feasible; propagates unexpected engine errors.
pub fn recommend(
    lib: &TechLibrary,
    node_id: &str,
    module_area: Area,
    quantity: Quantity,
    space: &SearchSpace,
) -> Result<Recommendation, ArchError> {
    // Each axis is validated independently: with only one axis empty the
    // Cartesian search degenerates to the SoC baseline alone, which used to
    // be returned as a "recommendation" without any search having happened.
    if space.integrations.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: "search space has no integration kinds".to_string(),
        });
    }
    if space.chiplet_counts.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: "search space has no chiplet counts".to_string(),
        });
    }
    let mut candidates = Vec::new();
    // Monolithic baseline.
    match evaluate_candidate(
        lib,
        node_id,
        module_area,
        quantity,
        IntegrationKind::Soc,
        1,
        space.flow,
    ) {
        Ok(c) => candidates.push(c),
        Err(ArchError::Model(_)) | Err(ArchError::Yield(_)) => {}
        Err(e) => return Err(e),
    }
    for &kind in &space.integrations {
        for &n in &space.chiplet_counts {
            // Incompatible axis combinations are skipped the way `explore`
            // records them: a monolithic kind holds exactly one die, and a
            // multi-chip kind needs at least two (a single die has no D2D
            // interface — `equal_chiplets` would hand the system builder a
            // D2D-less chip and the whole search used to hard-error).
            let compatible = if kind.is_multi_chip() { n >= 2 } else { n == 1 };
            if !compatible {
                continue;
            }
            match evaluate_candidate(lib, node_id, module_area, quantity, kind, n, space.flow) {
                Ok(c) => candidates.push(c),
                // Infeasible geometry (die too large, zero yield): skip.
                Err(ArchError::Model(_)) | Err(ArchError::Yield(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }
    if candidates.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("no feasible configuration for {module_area} at {node_id}"),
        });
    }
    candidates.sort_by(|a, b| {
        a.per_unit
            .partial_cmp(&b.per_unit)
            .expect("costs are finite")
    });
    let best = candidates[0].clone();
    Ok(Recommendation {
        integration: best.integration,
        chiplets: best.chiplets,
        per_unit: best.per_unit,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn small_low_volume_system_stays_monolithic() {
        // §6: "For a single system, monolithic SoC is a better choice unless
        // the production quantity is large enough."
        let rec = recommend(
            &lib(),
            "14nm",
            area(150.0),
            Quantity::new(100_000),
            &SearchSpace::default(),
        )
        .unwrap();
        assert_eq!(rec.integration, IntegrationKind::Soc);
        assert_eq!(rec.chiplets, 1);
        assert_eq!(rec.saving_vs_soc(), 0.0);
    }

    #[test]
    fn huge_advanced_high_volume_system_splits() {
        let rec = recommend(
            &lib(),
            "5nm",
            area(800.0),
            Quantity::new(10_000_000),
            &SearchSpace::default(),
        )
        .unwrap();
        assert!(rec.chiplets >= 2, "got {rec}");
        assert!(
            rec.saving_vs_soc() > 0.05,
            "saving {:.3}",
            rec.saving_vs_soc()
        );
    }

    #[test]
    fn beyond_reticle_system_has_no_monolithic_option() {
        // 1,200 mm² of modules cannot be one die; only multi-chip
        // candidates are feasible... the wafer still accepts 1,200 mm²
        // though, so enforce via candidates: best must be multi-chip
        // because monolithic yield is catastrophically low.
        let rec = recommend(
            &lib(),
            "5nm",
            area(1_200.0),
            Quantity::new(2_000_000),
            &SearchSpace::default(),
        )
        .unwrap();
        assert!(rec.chiplets >= 2);
    }

    #[test]
    fn candidates_are_sorted_and_complete() {
        let space = SearchSpace::default();
        let rec = recommend(&lib(), "7nm", area(600.0), Quantity::new(2_000_000), &space).unwrap();
        // 1 SoC baseline + 3 kinds × 4 counts = 13 candidates.
        assert_eq!(rec.candidates.len(), 13);
        for pair in rec.candidates.windows(2) {
            assert!(pair[0].per_unit <= pair[1].per_unit);
        }
        assert!(rec.soc_baseline().is_some());
    }

    #[test]
    fn granularity_has_marginal_utility() {
        // §4.1: "the cost benefits from smaller chiplet granularity have a
        // marginal utility" — the RE saving of 3→5 chiplets is smaller than
        // that of 1→2 at 5 nm / 800 mm² MCM.
        let lib = lib();
        let re_for = |n: u32| {
            evaluate_candidate(
                &lib,
                "5nm",
                area(800.0),
                Quantity::new(1),
                if n == 1 {
                    IntegrationKind::Soc
                } else {
                    IntegrationKind::Mcm
                },
                n,
                AssemblyFlow::ChipLast,
            )
            .unwrap()
            .re_per_unit
            .usd()
        };
        let one = re_for(1);
        let two = re_for(2);
        let three = re_for(3);
        let five = re_for(5);
        let first_split_saving = one - two;
        let granularity_saving = three - five;
        assert!(
            granularity_saving < 0.35 * first_split_saving,
            "3→5 saving {granularity_saving} must be marginal vs 1→2 {first_split_saving}"
        );
    }

    #[test]
    fn empty_space_is_rejected() {
        let space = SearchSpace {
            chiplet_counts: vec![],
            integrations: vec![],
            flow: AssemblyFlow::ChipLast,
        };
        assert!(recommend(&lib(), "7nm", area(100.0), Quantity::new(1_000), &space).is_err());
    }

    #[test]
    fn one_sided_empty_space_is_rejected() {
        // Regression: the guard used `&&`, so a space with one empty axis
        // slipped through and silently returned an SoC-only
        // "recommendation" that never searched anything.
        let counts_only = SearchSpace {
            chiplet_counts: vec![2, 3],
            integrations: vec![],
            flow: AssemblyFlow::ChipLast,
        };
        let err = recommend(
            &lib(),
            "7nm",
            area(100.0),
            Quantity::new(1_000),
            &counts_only,
        )
        .expect_err("empty integrations axis must be rejected");
        assert!(err.to_string().contains("integration"), "{err}");

        let kinds_only = SearchSpace {
            chiplet_counts: vec![],
            integrations: vec![IntegrationKind::Mcm],
            flow: AssemblyFlow::ChipLast,
        };
        let err = recommend(
            &lib(),
            "7nm",
            area(100.0),
            Quantity::new(1_000),
            &kinds_only,
        )
        .expect_err("empty chiplet-count axis must be rejected");
        assert!(err.to_string().contains("chiplet count"), "{err}");
    }

    #[test]
    fn multi_chip_space_with_single_chiplet_count_is_searchable() {
        // Regression: a search space listing 1 among the chiplet counts of
        // a multi-chip kind used to hard-error the whole `recommend` call
        // (`equal_chiplets` produced a D2D-less die the system builder
        // rejected). `explore` records such cells as incompatible; the
        // optimizer now skips them the same way.
        let space = SearchSpace {
            chiplet_counts: vec![1, 2, 3],
            integrations: IntegrationKind::MULTI_CHIP.to_vec(),
            flow: AssemblyFlow::ChipLast,
        };
        let rec = recommend(&lib(), "7nm", area(400.0), Quantity::new(2_000_000), &space)
            .expect("multi-chip × 1 cells must be skipped, not fatal");
        // The SoC baseline + 3 kinds × {2, 3}: the ×1 cells add nothing.
        assert_eq!(rec.candidates.len(), 1 + 3 * 2);
        assert!(rec
            .candidates
            .iter()
            .all(|c| c.integration == IntegrationKind::Soc || c.chiplets >= 2));
    }

    #[test]
    fn candidate_core_amortizes_identically_to_direct_evaluation() {
        let lib = lib();
        let core = candidate_core(
            &lib,
            "5nm",
            area(800.0),
            IntegrationKind::Mcm,
            3,
            AssemblyFlow::ChipLast,
        )
        .unwrap();
        for qty in [1u64, 500_000, 10_000_000] {
            let cached = core.at_quantity(Quantity::new(qty));
            let direct = evaluate_candidate(
                &lib,
                "5nm",
                area(800.0),
                Quantity::new(qty),
                IntegrationKind::Mcm,
                3,
                AssemblyFlow::ChipLast,
            )
            .unwrap();
            assert_eq!(cached, direct, "quantity {qty}");
        }
    }

    #[test]
    fn display_formats() {
        let rec = recommend(
            &lib(),
            "7nm",
            area(400.0),
            Quantity::new(1_000_000),
            &SearchSpace::default(),
        )
        .unwrap();
        let s = rec.to_string();
        assert!(s.contains("chiplet"), "{s}");
    }
}
