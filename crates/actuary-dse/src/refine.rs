//! Coarse-to-fine grid refinement: the exhaustive engines' winner tables
//! and Pareto fronts at a fraction of the full evaluations.
//!
//! The exhaustive engines ([`crate::explore`], [`crate::portfolio`]) price
//! every cell of the axis product. The paper's successors explore spaces
//! where that product reaches 10⁸ cells (Tang & Xie, arXiv:2206.07308;
//! CATCH, arXiv:2503.15753) — far past what full enumeration can serve.
//! This module exploits the structure those grids actually have: along the
//! ordered *area* and *quantity* axes, per-scheme winners and Pareto-front
//! membership are piecewise-constant with a handful of crossover points
//! (the paper's §4 area crossovers and §4.2 crossover *quantities* are
//! exactly such points). The driver therefore works on the 2-D
//! (area × quantity) plane:
//!
//! 1. **samples** a stride-spaced rectangular subgrid — every stride-th
//!    area × every stride-th quantity, plus both axis endpoints — at every
//!    configuration and node;
//! 2. **bisects** along *both* axes: every sampled gap whose endpoints
//!    disagree — a per-scheme winner flip at any node, or a change in
//!    which configurations sit on the Pareto fronts — is split until each
//!    disagreement is bracketed by adjacent areas (or adjacent
//!    quantities; this is what finds the §4.2 crossover quantities
//!    directly), pricing each midpoint only on the *candidate
//!    configurations* its gap endpoints consider relevant: their winners,
//!    their front members, and the winners' monolithic baselines;
//! 3. **fills** each remaining (provably quiet) point the same way — a
//!    handful of candidate configurations per point instead of the full
//!    breadth — first along each evaluated quantity row, then down the
//!    completed columns, until every (area, quantity) point is priced;
//! 4. **escalates** until stable: each side of a still-disagreeing
//!    boundary on either axis must have priced every configuration that
//!    wins or sits on a front on the other side — any it skipped gets
//!    priced now, so a crossover can't hide behind a narrow evaluation.
//!
//! Skipped cells are recorded as [`CellOutcome::Pruned`] in the sparse
//! result; counts, artifacts and grid order are unchanged. Per
//! `PortfolioCore`'s split, cores are quantity-independent and the
//! refiner reuses them across all of its sub-runs through a core cache,
//! so the quantity axis' win is the skipped amortization, post-processing
//! and storage work on pruned cells — on top of the candidate-breadth
//! core savings along the area axis.
//!
//! # Exact vs heuristic
//!
//! Refinement is *exact* — byte-identical winner tables and Pareto fronts
//! to the exhaustive engine — whenever winner regions and front
//! membership are contiguous along the ordered axes, which the bisection
//! step then brackets completely. It is heuristic against structure that
//! is invisible at every evaluated point: a configuration that wins (or
//! joins a front) only strictly inside an unevaluated gap while both
//! endpoints agree on a different picture. The reference tests pin the
//! exact case on tier-1-sized grids across strides and thread counts;
//! `core_evaluations()` reports the honest distinct-core work (the
//! refiner's internal core cache dedups cores re-requested by later
//! passes, so each core counts once).
//!
//! # Streaming
//!
//! [`explore_portfolio_refined_observed`] accepts a phase observer that
//! receives the partial result after each phase together with the cells
//! that phase newly stored — `actuary serve` uses it to stream a refined
//! grid's coarse picture before the run completes (see
//! `docs/http-api.md`).
//!
//! # Examples
//!
//! ```
//! use actuary_dse::explore::ExploreSpace;
//! use actuary_dse::refine::explore_refined;
//! use actuary_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let space = ExploreSpace {
//!     nodes: vec!["7nm".to_string()],
//!     areas_mm2: (1..=30).map(|i| f64::from(i) * 30.0).collect(),
//!     quantities: vec![2_000_000],
//!     ..ExploreSpace::default()
//! };
//! let refined = explore_refined(&lib, &space, 2)?;
//! assert_eq!(refined.len(), space.len());
//! // Pruned cells are accounted for, never silently dropped.
//! assert_eq!(
//!     refined.feasible_count()
//!         + refined.infeasible_count()
//!         + refined.incompatible_count()
//!         + refined.pruned_count(),
//!     refined.len()
//! );
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use actuary_arch::ArchError;
use actuary_tech::{IntegrationKind, TechLibrary};

use crate::engine::resolve_threads;
use crate::explore::{CellOutcome, ExploreResult, ExploreSpace};
use crate::pareto::pareto_min_indices;
use crate::portfolio::{
    explore_portfolio, explore_portfolio_shared, CellIdx, GridShape, PortfolioResult,
    PortfolioSpace, SharedCoreCache,
};

/// How an exploration request walks its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Evaluate every cell (the reference path).
    Exhaustive,
    /// Coarse-to-fine refinement over the area × quantity plane (this
    /// module).
    Refine,
}

impl ExploreMode {
    /// Stable lower-case label (used on the CLI and in scenario files).
    pub fn label(self) -> &'static str {
        match self {
            ExploreMode::Exhaustive => "exhaustive",
            ExploreMode::Refine => "refine",
        }
    }
}

impl fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExploreMode {
    type Err = String;

    /// Parses the user-facing mode grammar (case-insensitive) — the single
    /// definition the CLI flag and the scenario schema both use.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "exhaustive" => Ok(ExploreMode::Exhaustive),
            "refine" | "refined" => Ok(ExploreMode::Refine),
            other => Err(format!(
                "unknown explore mode {other:?} (exhaustive|refine)"
            )),
        }
    }
}

/// Coarse-sampling strides for the two refined axes. A stride of `0`
/// picks an automatic value for that axis (a power of two near half the
/// square root of the axis length); a stride of `1` keeps the axis
/// dense (refinement then only narrows the *other* axis). The default
/// refines both axes automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineOptions {
    /// Coarse stride along the area axis (`0` = automatic).
    pub area_stride: usize,
    /// Coarse stride along the quantity axis (`0` = automatic).
    pub quantity_stride: usize,
}

/// A refinement phase, in execution order. Observers receive one
/// callback per phase that stored new cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinePhase {
    /// The stride-sampled rectangular subgrid at full breadth.
    Coarse,
    /// Midpoints of disagreeing gaps, both axes, at candidate breadth.
    Bisect,
    /// Every remaining point at candidate breadth.
    Fill,
    /// Boundary re-pricing until every disagreement is mutually priced.
    Escalate,
}

impl RefinePhase {
    /// Stable lower-case label (used in streamed-segment diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            RefinePhase::Coarse => "coarse",
            RefinePhase::Bisect => "bisect",
            RefinePhase::Fill => "fill",
            RefinePhase::Escalate => "escalate",
        }
    }
}

/// A phase callback for [`explore_portfolio_refined_observed`]: receives
/// the phase, the partial result so far (every cell evaluated to date,
/// pruned cells derived on read), and the master-grid indices the phase
/// newly stored, sorted ascending. Returning `false` aborts the run —
/// the streaming server uses this when a client hangs up mid-response.
pub type RefineObserver<'o> = dyn FnMut(RefinePhase, &PortfolioResult, &[usize]) -> bool + 'o;

/// A configuration point of one operating point's block: indices into the
/// (integration, chiplet count, flow, scheme variant) axes.
type Config = (usize, usize, usize, usize);

/// Per-scheme winner of every (node, quantity, area) operating point,
/// keyed (scheme position, node, quantity, area).
type WinnerMap = BTreeMap<(usize, usize, usize, usize), (Config, f64)>;

/// Pareto-front members grouped by the (area, quantity) point they sit
/// at.
type FrontMap = BTreeMap<(usize, usize), BTreeSet<Config>>;

/// Restricted-evaluation requests batched by candidate set (`None` =
/// full breadth), each holding the (area, quantity) points to price.
type RequestMap = BTreeMap<Option<Vec<Config>>, BTreeSet<(usize, usize)>>;

/// How thoroughly an (area, quantity) point has been evaluated so far:
/// every configuration, or the union of the restricted (integration,
/// chiplet, flow) axis products it has been priced on. Recording the
/// products — not just a restricted/full bit — lets the escalation pass
/// ask the precise question that matters for exactness: "has this point
/// priced the configuration that wins next door?"
#[derive(Debug, Clone)]
enum Coverage {
    /// Every configuration.
    Full,
    /// Only the recorded axis products.
    Products(Vec<ConfigFilter>),
}

struct Refiner<'a> {
    lib: &'a TechLibrary,
    space: &'a PortfolioSpace,
    /// The caller's thread request, passed through to every sub-run.
    threads: usize,
    shape: GridShape,
    /// Variant index → position of its scheme in `space.schemes`.
    scheme_pos: Vec<usize>,
    /// Evaluated cells by flat master-grid index.
    master: BTreeMap<usize, CellOutcome>,
    /// Pricing coverage per evaluated (area index, quantity index) point.
    coverage: BTreeMap<(usize, usize), Coverage>,
    core_evaluations: usize,
    /// Every sub-run reuses cores through this cache under the given
    /// library tag — the caller's cross-request cache when provided, a
    /// run-private one otherwise (cores are quantity-independent, so
    /// stripe-wise sub-runs re-request the same cores constantly).
    shared: (&'a SharedCoreCache, [u8; 32]),
    /// Master indices newly stored since the last observer flush (only
    /// tracked when an observer is installed).
    track_dirty: bool,
    dirty: Vec<usize>,
}

impl<'a> Refiner<'a> {
    fn new(
        lib: &'a TechLibrary,
        space: &'a PortfolioSpace,
        threads: usize,
        shared: (&'a SharedCoreCache, [u8; 32]),
        track_dirty: bool,
    ) -> Self {
        let variants = space.scheme_variants();
        let scheme_pos = variants
            .iter()
            .map(|v| {
                space
                    .schemes
                    .iter()
                    .position(|&s| s == v.scheme)
                    .expect("variants come from the scheme axis")
            })
            .collect();
        Refiner {
            lib,
            space,
            threads,
            shape: GridShape::of(space, variants.len()),
            scheme_pos,
            master: BTreeMap::new(),
            coverage: BTreeMap::new(),
            core_evaluations: 0,
            shared,
            track_dirty,
            dirty: Vec::new(),
        }
    }

    /// Evaluates the rectangle of the given master-axis areas × quantities
    /// through the exhaustive engine — every configuration when `filter`
    /// is `None`, the filtered (integration, chiplet, flow) index product
    /// otherwise — and merges the evaluated cells into the master store.
    /// Scheme axes are always carried whole so variant indices map
    /// one-to-one.
    fn eval_rect(
        &mut self,
        areas: &BTreeSet<usize>,
        quantities: &BTreeSet<usize>,
        filter: Option<&ConfigFilter>,
    ) -> Result<(), ArchError> {
        if areas.is_empty() || quantities.is_empty() {
            return Ok(());
        }
        let area_list: Vec<usize> = areas.iter().copied().collect();
        let quantity_list: Vec<usize> = quantities.iter().copied().collect();
        let full = ConfigFilter {
            integrations: (0..self.shape.integrations).collect(),
            chiplets: (0..self.shape.chiplets).collect(),
            flows: (0..self.shape.flows).collect(),
        };
        let restriction = filter;
        let filter = filter.unwrap_or(&full);
        let sub = PortfolioSpace {
            nodes: self.space.nodes.clone(),
            areas_mm2: area_list.iter().map(|&a| self.space.areas_mm2[a]).collect(),
            quantities: quantity_list
                .iter()
                .map(|&q| self.space.quantities[q])
                .collect(),
            integrations: filter
                .integrations
                .iter()
                .map(|&i| self.space.integrations[i])
                .collect(),
            chiplet_counts: filter
                .chiplets
                .iter()
                .map(|&c| self.space.chiplet_counts[c])
                .collect(),
            flows: filter.flows.iter().map(|&f| self.space.flows[f]).collect(),
            schemes: self.space.schemes.clone(),
            scms_multiplicities: self.space.scms_multiplicities.clone(),
            fsmc_situations: self.space.fsmc_situations.clone(),
            ocme_center_nodes: self.space.ocme_center_nodes.clone(),
            package_reuse: self.space.package_reuse,
        };
        let (cache, tag) = self.shared;
        let result = explore_portfolio_shared(self.lib, &sub, self.threads, cache, tag)?;
        self.core_evaluations += result.core_evaluations();
        let sub_shape = result.shape();
        for (sub_i, outcome) in result.stored_entries() {
            let c = sub_shape.coords(*sub_i);
            let master_idx = self.shape.index(CellIdx {
                node: c.node,
                area: area_list[c.area],
                quantity: quantity_list[c.quantity],
                integration: filter.integrations[c.integration],
                chiplets: filter.chiplets[c.chiplets],
                flow: filter.flows[c.flow],
                variant: c.variant,
            });
            if self.master.insert(master_idx, outcome.clone()).is_none() && self.track_dirty {
                self.dirty.push(master_idx);
            }
        }
        for &a in &area_list {
            for &q in &quantity_list {
                let entry = self
                    .coverage
                    .entry((a, q))
                    .or_insert_with(|| Coverage::Products(Vec::new()));
                match (restriction, &mut *entry) {
                    (None, entry) => *entry = Coverage::Full,
                    (Some(f), Coverage::Products(products)) => products.push(f.clone()),
                    (Some(_), Coverage::Full) => {}
                }
            }
        }
        Ok(())
    }

    /// Whether the point has been evaluated at every configuration.
    fn is_full(&self, area: usize, quantity: usize) -> bool {
        matches!(self.coverage.get(&(area, quantity)), Some(Coverage::Full))
    }

    /// Whether the point's evaluations so far have priced the given
    /// configuration (the variant axis is always carried whole, so only
    /// the filtered axes decide).
    fn priced(&self, area: usize, quantity: usize, config: Config) -> bool {
        match self.coverage.get(&(area, quantity)) {
            Some(Coverage::Full) => true,
            Some(Coverage::Products(products)) => products.iter().any(|f| {
                f.integrations.contains(&config.0)
                    && f.chiplets.contains(&config.1)
                    && f.flows.contains(&config.2)
            }),
            None => false,
        }
    }

    /// The evaluated point set as quantity-indexed rows and area-indexed
    /// columns, each sorted ascending.
    fn evaluated_lines(&self) -> (BTreeMap<usize, Vec<usize>>, BTreeMap<usize, Vec<usize>>) {
        let mut rows: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut cols: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, q) in self.coverage.keys() {
            rows.entry(q).or_default().push(a);
            cols.entry(a).or_default().push(q);
        }
        // BTreeMap iteration visits (a, q) in lexicographic order, so rows
        // are already ascending; columns need the sort.
        for col in cols.values_mut() {
            col.sort_unstable();
        }
        (rows, cols)
    }

    /// The current per-scheme winner of every (node, quantity, area)
    /// operating point: first strict minimum in grid order, matching the
    /// exhaustive winner tables' tie rule.
    fn winner_map(&self) -> WinnerMap {
        let mut winners: WinnerMap = BTreeMap::new();
        for (&i, outcome) in &self.master {
            let CellOutcome::Feasible(c) = outcome else {
                continue;
            };
            let idx = self.shape.coords(i);
            let key = (
                self.scheme_pos[idx.variant],
                idx.node,
                idx.quantity,
                idx.area,
            );
            let cost = c.per_unit.usd();
            let config = (idx.integration, idx.chiplets, idx.flow, idx.variant);
            match winners.get(&key) {
                Some((_, best)) if cost >= *best => {}
                _ => {
                    winners.insert(key, (config, cost));
                }
            }
        }
        winners
    }

    /// Which configurations sit on each scheme's Pareto fronts (both the
    /// per-unit × chiplet-count and the program-total × per-unit front),
    /// grouped by the (area, quantity) point they sit at.
    fn front_map(&self) -> FrontMap {
        let mut fronts: FrontMap = BTreeMap::new();
        for s_pos in 0..self.space.schemes.len() {
            // (flat index, per-unit, chiplet count, program total)
            let mut cells: Vec<(usize, f64, f64, f64)> = Vec::new();
            for (&i, outcome) in &self.master {
                let CellOutcome::Feasible(c) = outcome else {
                    continue;
                };
                let idx = self.shape.coords(i);
                if self.scheme_pos[idx.variant] != s_pos {
                    continue;
                }
                let per_unit = c.per_unit.usd();
                cells.push((
                    i,
                    per_unit,
                    f64::from(self.space.chiplet_counts[idx.chiplets]),
                    per_unit * self.space.quantities[idx.quantity] as f64,
                ));
            }
            let chip_points: Vec<(f64, f64)> = cells.iter().map(|&(_, p, ch, _)| (p, ch)).collect();
            let program_points: Vec<(f64, f64)> =
                cells.iter().map(|&(_, p, _, pr)| (pr, p)).collect();
            for k in pareto_min_indices(&chip_points)
                .into_iter()
                .chain(pareto_min_indices(&program_points))
            {
                let idx = self.shape.coords(cells[k].0);
                fronts.entry((idx.area, idx.quantity)).or_default().insert((
                    idx.integration,
                    idx.chiplets,
                    idx.flow,
                    idx.variant,
                ));
            }
        }
        fronts
    }

    /// The candidate configurations the given (area, quantity) points
    /// consider relevant: their per-node winners and their Pareto-front
    /// members.
    fn candidates_at(
        &self,
        winners: &WinnerMap,
        fronts: &FrontMap,
        points: &[(usize, usize)],
    ) -> BTreeSet<Config> {
        let mut candidates: BTreeSet<Config> = BTreeSet::new();
        for &(a, q) in points {
            for s in 0..self.space.schemes.len() {
                for n in 0..self.shape.nodes {
                    if let Some((config, _)) = winners.get(&(s, n, q, a)) {
                        candidates.insert(*config);
                    }
                }
            }
            if let Some(members) = fronts.get(&(a, q)) {
                candidates.extend(members.iter().copied());
            }
        }
        candidates
    }

    /// The monolithic-baseline companion of a restricted evaluation:
    /// whatever SoC cells the main product and its pads miss that a
    /// winner they can produce would quote its saving against — SoC at
    /// the same chiplet count for the family schemes, SoC at chiplet
    /// count 1 for scheme-free cells. Every chiplet index any of the
    /// products prices needs its SoC companion (a pad can discover the
    /// point's winner just as the main span can), minus the (soc,
    /// chiplets) pairs a product already covers. Kept separate from the
    /// main product so the chiplet-1 baseline can't drag a narrow
    /// chiplet range back toward full breadth.
    fn baseline_filter(&self, main: &ConfigFilter, pads: &[ConfigFilter]) -> Option<ConfigFilter> {
        let soc = self
            .space
            .integrations
            .iter()
            .position(|&k| k == IntegrationKind::Soc)?;
        let mut chiplets: BTreeSet<usize> = main
            .chiplets
            .iter()
            .chain(pads.iter().flat_map(|p| p.chiplets.iter()))
            .copied()
            .collect();
        if let Some(one) = self.space.chiplet_counts.iter().position(|&c| c == 1) {
            chiplets.insert(one);
        }
        let covered = |c: &usize| {
            std::iter::once(main)
                .chain(pads)
                .any(|f| f.integrations.contains(&soc) && f.chiplets.contains(c))
        };
        chiplets.retain(|c| !covered(c));
        if chiplets.is_empty() {
            return None;
        }
        Some(ConfigFilter {
            integrations: vec![soc],
            chiplets: chiplets.into_iter().collect(),
            flows: main.flows.clone(),
        })
    }

    /// Evaluates the rectangle on the contiguous axis product spanning the
    /// given configurations, plus the monolithic baselines that product
    /// misses.
    fn eval_restricted(
        &mut self,
        areas: &BTreeSet<usize>,
        quantities: &BTreeSet<usize>,
        configs: &[Config],
    ) -> Result<(), ArchError> {
        let main = ConfigFilter::spanning(configs);
        let pads = main.pads(
            self.space.integrations.len(),
            self.space.chiplet_counts.len(),
        );
        let baseline = self.baseline_filter(&main, &pads);
        self.eval_rect(areas, quantities, Some(&main))?;
        for pad in &pads {
            self.eval_rect(areas, quantities, Some(pad))?;
        }
        if let Some(baseline) = baseline {
            self.eval_rect(areas, quantities, Some(&baseline))?;
        }
        Ok(())
    }

    /// Runs every batched point request: points sharing a candidate set
    /// are split into rows and rows with identical area sets merge into
    /// one rectangular evaluation, so a quiet region that fills the same
    /// way across many quantities costs one engine sub-run, not one per
    /// row. Grouping is pure BTree bookkeeping — deterministic regardless
    /// of thread count.
    fn eval_requests(&mut self, requests: RequestMap) -> Result<(), ArchError> {
        for (configs, points) in requests {
            let mut by_row: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
            for (a, q) in points {
                by_row.entry(q).or_default().insert(a);
            }
            let mut rects: BTreeMap<Vec<usize>, BTreeSet<usize>> = BTreeMap::new();
            for (q, row_areas) in by_row {
                rects
                    .entry(row_areas.into_iter().collect())
                    .or_default()
                    .insert(q);
            }
            for (rect_areas, rect_quantities) in rects {
                let rect_areas: BTreeSet<usize> = rect_areas.into_iter().collect();
                match &configs {
                    None => self.eval_rect(&rect_areas, &rect_quantities, None)?,
                    Some(c) => self.eval_restricted(&rect_areas, &rect_quantities, c)?,
                }
            }
        }
        Ok(())
    }

    /// Whether areas `lo` and `hi` disagree along the fixed quantity row
    /// `q`: a per-scheme winner flip at any node, or a difference in
    /// front membership at the two points.
    fn differs_area(
        &self,
        winners: &WinnerMap,
        fronts: &FrontMap,
        q: usize,
        lo: usize,
        hi: usize,
    ) -> bool {
        for s in 0..self.space.schemes.len() {
            for n in 0..self.shape.nodes {
                let at = |a: usize| winners.get(&(s, n, q, a)).map(|(config, _)| *config);
                if at(lo) != at(hi) {
                    return true;
                }
            }
        }
        let empty = BTreeSet::new();
        fronts.get(&(lo, q)).unwrap_or(&empty) != fronts.get(&(hi, q)).unwrap_or(&empty)
    }

    /// Whether quantities `lo` and `hi` disagree along the fixed area
    /// column `a` — the quantity-axis twin of [`Self::differs_area`];
    /// a flip here is a §4.2 crossover quantity.
    fn differs_quantity(
        &self,
        winners: &WinnerMap,
        fronts: &FrontMap,
        a: usize,
        lo: usize,
        hi: usize,
    ) -> bool {
        for s in 0..self.space.schemes.len() {
            for n in 0..self.shape.nodes {
                let at = |q: usize| winners.get(&(s, n, q, a)).map(|(config, _)| *config);
                if at(lo) != at(hi) {
                    return true;
                }
            }
        }
        let empty = BTreeSet::new();
        fronts.get(&(a, lo)).unwrap_or(&empty) != fronts.get(&(a, hi)).unwrap_or(&empty)
    }
}

/// The (integration, chiplet count, flow) axis-index subsets a restricted
/// evaluation covers.
#[derive(Debug, Clone)]
struct ConfigFilter {
    integrations: Vec<usize>,
    chiplets: Vec<usize>,
    flows: Vec<usize>,
}

impl ConfigFilter {
    /// The smallest *contiguous* axis product covering every given
    /// configuration: per axis, every index between the smallest and
    /// largest one used. Contiguity is deliberate — winner structure
    /// moves monotonically along the ordered axes (larger areas favour
    /// more chiplets and climb the integration ladder), so a
    /// configuration that wins strictly between two bracketing winners
    /// almost always sits between them on each axis too, and the range
    /// prices it where the bare index set would miss it.
    fn spanning(configs: &[Config]) -> ConfigFilter {
        let mut ranges = [(usize::MAX, 0usize); 3];
        for &(i, c, f, _) in configs {
            for (range, v) in ranges.iter_mut().zip([i, c, f]) {
                range.0 = range.0.min(v);
                range.1 = range.1.max(v);
            }
        }
        let [integrations, chiplets, flows] = ranges.map(|(lo, hi)| (lo..=hi).collect());
        ConfigFilter {
            integrations,
            chiplets,
            flows,
        }
    }

    /// The one-index padding filters flanking this span on the ordered
    /// integration and chiplet axes (clamped to each axis). Winner
    /// regions on these axes meet in near-tie bands, and such a band can
    /// enclose a micro-region whose true winner appears in *no* coarse
    /// sample's belief — invisible to bisection and escalation, which
    /// only chase disagreements they can see. The direct axis neighbours
    /// of the believed winners are exactly the configurations those
    /// bands near-tie against, so pricing them closes the hole. The pads
    /// are cross-shaped, not a widened rectangle: each extends one axis
    /// while holding the other at the span's own values, skipping the
    /// corner products a second-order island would need.
    fn pads(&self, integrations: usize, chiplets: usize) -> Vec<ConfigFilter> {
        let flanks = |range: &[usize], len: usize| -> Vec<usize> {
            let (Some(&lo), Some(&hi)) = (range.first(), range.last()) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            if lo > 0 {
                out.push(lo - 1);
            }
            if hi + 1 < len {
                out.push(hi + 1);
            }
            out
        };
        let mut pads = Vec::new();
        let integration_flanks = flanks(&self.integrations, integrations);
        if !integration_flanks.is_empty() {
            pads.push(ConfigFilter {
                integrations: integration_flanks,
                chiplets: self.chiplets.clone(),
                flows: self.flows.clone(),
            });
        }
        let chiplet_flanks = flanks(&self.chiplets, chiplets);
        if !chiplet_flanks.is_empty() {
            pads.push(ConfigFilter {
                integrations: self.integrations.clone(),
                chiplets: chiplet_flanks,
                flows: self.flows.clone(),
            });
        }
        pads
    }
}

/// The stride refinement starts an axis from: covers the axis with
/// roughly `4 × stride` coarse samples, doubling as long as the axis
/// affords it.
fn auto_stride(len: usize) -> usize {
    let mut stride = 1;
    while stride * stride * 4 <= len {
        stride *= 2;
    }
    stride
}

/// [`explore_portfolio_refined`] with explicit per-axis starting strides.
/// Exposed so the benches and the reference tests can force coarse starts
/// on small grids (and so `--quantity-stride` / scenario `quantity_stride`
/// reach the engine).
///
/// # Errors
///
/// Everything [`crate::portfolio::explore_portfolio`] raises, plus
/// [`ArchError::InvalidArchitecture`] when the area or quantity axis is
/// not strictly increasing (refinement bisects gaps along both, so the
/// axes must be ordered).
pub fn explore_portfolio_refined_with(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    options: RefineOptions,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_observed(lib, space, threads, options, None, None)
}

/// [`explore_portfolio_refined`] with cores reused *across calls* through
/// `cache` under the given library `tag` — the refinement twin of
/// [`explore_portfolio_shared`]. Every coarse, bisection, fill and
/// escalation sub-run consults the cache, so overlapping requests skip
/// straight to amortization.
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`].
pub fn explore_portfolio_refined_shared(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    cache: &SharedCoreCache,
    tag: [u8; 32],
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_observed(
        lib,
        space,
        threads,
        RefineOptions::default(),
        Some((cache, tag)),
        None,
    )
}

/// The full-control refinement entry: explicit strides, an optional
/// cross-call core cache, and an optional per-phase [`RefineObserver`]
/// (the streaming hook). All other refinement entries are facades over
/// this one.
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`]; additionally fails when the
/// observer returns `false` (the run is abandoned mid-phase).
pub fn explore_portfolio_refined_observed(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    options: RefineOptions,
    shared: Option<(&SharedCoreCache, [u8; 32])>,
    mut observer: Option<&mut RefineObserver<'_>>,
) -> Result<PortfolioResult, ArchError> {
    space.validate()?;
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    for center in space.ocme_center_nodes.iter().flatten() {
        lib.node(center).map_err(ArchError::Tech)?;
    }
    if !space.areas_mm2.windows(2).all(|w| w[0] < w[1]) {
        return Err(ArchError::InvalidArchitecture {
            reason: "coarse-to-fine refinement requires a strictly increasing areas_mm2 axis"
                .to_string(),
        });
    }
    if !space.quantities.windows(2).all(|w| w[0] < w[1]) {
        return Err(ArchError::InvalidArchitecture {
            reason: "coarse-to-fine refinement requires a strictly increasing quantities axis"
                .to_string(),
        });
    }
    let areas = space.areas_mm2.len();
    let quantities = space.quantities.len();
    let resolved_threads = resolve_threads(threads, space.len());
    let astride = match (areas, options.area_stride) {
        // Two samples already cover a two-point axis.
        (0..=2, _) => 1,
        (_, 0) => auto_stride(areas),
        (_, s) => s,
    };
    let qstride = match (quantities, options.quantity_stride) {
        (0..=2, _) => 1,
        (_, 0) => auto_stride(quantities),
        (_, s) => s,
    };
    if astride <= 1 && qstride <= 1 {
        // Nothing to skip on either axis: the coarse pass would already be
        // exhaustive.
        let result = match shared {
            Some((cache, tag)) => explore_portfolio_shared(lib, space, threads, cache, tag)?,
            None => explore_portfolio(lib, space, threads)?,
        };
        if let Some(obs) = observer.as_mut() {
            let all: Vec<usize> = result.stored_entries().iter().map(|(i, _)| *i).collect();
            if !obs(RefinePhase::Coarse, &result, &all) {
                return Err(observer_abort());
            }
        }
        return Ok(result);
    }

    // The run-private core cache (used when the caller brought none):
    // cores are quantity-independent, so the row- and column-wise
    // sub-runs below re-request the same cores constantly; dedup'ing them
    // here is what keeps the quantity axis nearly free of core work.
    let private_cache;
    let shared = match shared {
        Some(s) => s,
        None => {
            private_cache = SharedCoreCache::new(usize::MAX);
            (&private_cache, [0u8; 32])
        }
    };
    let mut refiner = Refiner::new(lib, space, threads, shared, observer.is_some());

    // 1. Coarse pass: the stride-sampled rectangle plus both axis
    //    endpoints, every configuration. Each pass below closes a span
    //    recording cumulative coverage and core-evaluation counts; watch
    //    them with `--log-level debug` or via the
    //    `actuary_engine_phase_seconds` histogram on `/metricsz`.
    let mut coarse_span = actuary_obs::span!("refine.coarse");
    let mut coarse_areas: BTreeSet<usize> = (0..areas).step_by(astride).collect();
    coarse_areas.insert(areas - 1);
    let mut coarse_quantities: BTreeSet<usize> = (0..quantities).step_by(qstride).collect();
    coarse_quantities.insert(quantities - 1);
    refiner.eval_rect(&coarse_areas, &coarse_quantities, None)?;
    coarse_span.record("points_evaluated", refiner.coverage.len() as u64);
    coarse_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(coarse_span);
    notify(
        &mut refiner,
        &mut observer,
        RefinePhase::Coarse,
        resolved_threads,
    )?;

    // 2. Bisection: split every gap whose endpoints disagree — along each
    //    evaluated quantity row (area gaps) and each evaluated area
    //    column (quantity gaps; these brackets are the §4.2 crossover
    //    quantities) — until each disagreement is bracketed by adjacent
    //    indices. Midpoints are priced only on the configurations their
    //    gap endpoints consider relevant — flips are dense along fine
    //    axes, so full-breadth midpoints would dominate the whole run;
    //    the escalation pass below re-prices any boundary this narrowness
    //    gets wrong. Every requested midpoint is a new point, so this
    //    terminates.
    loop {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let (rows, cols) = refiner.evaluated_lines();
        let mut area_requests: RequestMap = BTreeMap::new();
        for (&q, row) in &rows {
            for pair in row.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if hi - lo > 1 && refiner.differs_area(&winners, &fronts, q, lo, hi) {
                    let mid = lo + (hi - lo) / 2;
                    let local = refiner.candidates_at(&winners, &fronts, &[(lo, q), (hi, q)]);
                    let key = (!local.is_empty()).then(|| local.into_iter().collect());
                    area_requests.entry(key).or_default().insert((mid, q));
                }
            }
        }
        let mut quantity_requests: RequestMap = BTreeMap::new();
        for (&a, col) in &cols {
            for pair in col.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if hi - lo > 1 && refiner.differs_quantity(&winners, &fronts, a, lo, hi) {
                    let mid = lo + (hi - lo) / 2;
                    let local = refiner.candidates_at(&winners, &fronts, &[(a, lo), (a, hi)]);
                    let key = (!local.is_empty()).then(|| local.into_iter().collect());
                    quantity_requests.entry(key).or_default().insert((a, mid));
                }
            }
        }
        if area_requests.is_empty() && quantity_requests.is_empty() {
            break;
        }
        if !area_requests.is_empty() {
            let mut span = actuary_obs::span!("refine.bisect");
            let points: usize = area_requests.values().map(BTreeSet::len).sum();
            refiner.eval_requests(area_requests)?;
            span.record("points_evaluated", points as u64);
            span.record("core_evaluations", refiner.core_evaluations as u64);
        }
        if !quantity_requests.is_empty() {
            let mut span = actuary_obs::span!("refine.bisect_q");
            let points: usize = quantity_requests.values().map(BTreeSet::len).sum();
            refiner.eval_requests(quantity_requests)?;
            span.record("points_evaluated", points as u64);
            span.record("core_evaluations", refiner.core_evaluations as u64);
        }
    }
    notify(
        &mut refiner,
        &mut observer,
        RefinePhase::Bisect,
        resolved_threads,
    )?;

    // 3. Fill each remaining (provably quiet) point with only the
    //    configurations its surrounding evaluated points consider
    //    relevant — the sub-space is an axis product, so a *global*
    //    candidate union would multiply back out toward full breadth,
    //    while per-gap candidates stay a handful. Points that resolve to
    //    the same candidate set batch into shared rectangular runs.
    //
    //    Two sweeps: first along every evaluated quantity row (interior
    //    gaps take both endpoints' candidates; rows created by quantity
    //    bisection lack the axis endpoints, so their edge runs extend
    //    one-sided from the nearest evaluated point), then down the — now
    //    complete — area columns, which the coarse rows at quantity 0 and
    //    Q−1 bracket. After both sweeps every (area, quantity) point is
    //    priced, which the winner tables require: they report every
    //    operating point.
    let mut fill_span = actuary_obs::span!("refine.fill");
    {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let (rows, _) = refiner.evaluated_lines();
        let mut requests: RequestMap = BTreeMap::new();
        for (&q, row) in &rows {
            for pair in row.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if hi - lo <= 1 {
                    continue;
                }
                let local = refiner.candidates_at(&winners, &fronts, &[(lo, q), (hi, q)]);
                let key: Option<Vec<Config>> =
                    (!local.is_empty()).then(|| local.into_iter().collect());
                let slot = requests.entry(key).or_default();
                slot.extend((lo + 1..hi).map(|a| (a, q)));
            }
            let (&first, &last) = (
                row.first().expect("evaluated rows are non-empty"),
                row.last().expect("evaluated rows are non-empty"),
            );
            for (edge, nearest) in [(0..first, first), (last + 1..areas, last)] {
                if edge.is_empty() {
                    continue;
                }
                let local = refiner.candidates_at(&winners, &fronts, &[(nearest, q)]);
                let key: Option<Vec<Config>> =
                    (!local.is_empty()).then(|| local.into_iter().collect());
                requests
                    .entry(key)
                    .or_default()
                    .extend(edge.map(|a| (a, q)));
            }
        }
        refiner.eval_requests(requests)?;
    }
    {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let (_, cols) = refiner.evaluated_lines();
        let mut requests: RequestMap = BTreeMap::new();
        for (&a, col) in &cols {
            for pair in col.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if hi - lo <= 1 {
                    continue;
                }
                let local = refiner.candidates_at(&winners, &fronts, &[(a, lo), (a, hi)]);
                let key: Option<Vec<Config>> =
                    (!local.is_empty()).then(|| local.into_iter().collect());
                let slot = requests.entry(key).or_default();
                slot.extend((lo + 1..hi).map(|q| (a, q)));
            }
        }
        refiner.eval_requests(requests)?;
    }
    debug_assert_eq!(
        refiner.coverage.len(),
        areas * quantities,
        "fill must price every (area, quantity) point"
    );
    fill_span.record("points_evaluated", refiner.coverage.len() as u64);
    fill_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(fill_span);
    notify(
        &mut refiner,
        &mut observer,
        RefinePhase::Fill,
        resolved_threads,
    )?;

    // 4. Escalate: every boundary disagreement that survives bisection and
    //    fill should be genuine structure — but a narrowly priced point is
    //    only trustworthy evidence of that if it actually priced the
    //    configurations winning (or sitting on the fronts) right next
    //    door, on either axis. Re-price each suspect point on exactly the
    //    configurations it is missing; winners may shift as cheaper
    //    configs come into view, so loop until every disagreeing boundary
    //    is mutually priced. Coverage only ever grows, so this terminates.
    let mut escalate_span = actuary_obs::span!("refine.escalate");
    loop {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let mut escalate: BTreeMap<(usize, usize), BTreeSet<Config>> = BTreeMap::new();
        let mut demand = |point: (usize, usize), from: (usize, usize), refiner: &Refiner| {
            if refiner.is_full(point.0, point.1) {
                return;
            }
            let missing: BTreeSet<Config> = refiner
                .candidates_at(&winners, &fronts, &[from])
                .into_iter()
                .filter(|&c| !refiner.priced(point.0, point.1, c))
                .collect();
            if !missing.is_empty() {
                escalate.entry(point).or_default().extend(missing);
            }
        };
        for q in 0..quantities {
            for lo in 0..areas.saturating_sub(1) {
                let hi = lo + 1;
                if (refiner.is_full(lo, q) && refiner.is_full(hi, q))
                    || !refiner.differs_area(&winners, &fronts, q, lo, hi)
                {
                    continue;
                }
                demand((lo, q), (hi, q), &refiner);
                demand((hi, q), (lo, q), &refiner);
            }
        }
        for a in 0..areas {
            for lo in 0..quantities.saturating_sub(1) {
                let hi = lo + 1;
                if (refiner.is_full(a, lo) && refiner.is_full(a, hi))
                    || !refiner.differs_quantity(&winners, &fronts, a, lo, hi)
                {
                    continue;
                }
                demand((a, lo), (a, hi), &refiner);
                demand((a, hi), (a, lo), &refiner);
            }
        }
        if escalate.is_empty() {
            break;
        }
        let mut requests: RequestMap = BTreeMap::new();
        for (point, missing) in escalate {
            requests
                .entry(Some(missing.into_iter().collect()))
                .or_default()
                .insert(point);
        }
        refiner.eval_requests(requests)?;
    }
    escalate_span.record("points_evaluated", refiner.coverage.len() as u64);
    escalate_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(escalate_span);
    notify(
        &mut refiner,
        &mut observer,
        RefinePhase::Escalate,
        resolved_threads,
    )?;

    if actuary_obs::log::enabled(actuary_obs::log::Level::Debug) {
        let full = refiner
            .coverage
            .values()
            .filter(|c| matches!(c, Coverage::Full))
            .count();
        actuary_obs::log::event(
            actuary_obs::log::Level::Debug,
            "refine.summary",
            &[
                ("points", (areas * quantities).into()),
                ("full", full.into()),
                ("restricted", (refiner.coverage.len() - full).into()),
                (
                    "unevaluated",
                    (areas * quantities - refiner.coverage.len()).into(),
                ),
                ("core_evaluations", refiner.core_evaluations.into()),
            ],
        );
    }
    Ok(PortfolioResult::from_parts(
        space,
        resolved_threads,
        refiner.core_evaluations,
        refiner.master.into_iter().collect(),
    ))
}

fn observer_abort() -> ArchError {
    ArchError::InvalidArchitecture {
        reason: "refinement aborted: the phase observer declined to continue".to_string(),
    }
}

/// Flushes the refiner's newly stored cells to the observer as a partial
/// [`PortfolioResult`] snapshot. Phases that stored nothing new are still
/// reported (an empty segment keeps the streamed phase order stable).
fn notify(
    refiner: &mut Refiner<'_>,
    observer: &mut Option<&mut RefineObserver<'_>>,
    phase: RefinePhase,
    resolved_threads: usize,
) -> Result<(), ArchError> {
    let Some(obs) = observer.as_mut() else {
        return Ok(());
    };
    let mut fresh = std::mem::take(&mut refiner.dirty);
    fresh.sort_unstable();
    let snapshot = PortfolioResult::from_parts(
        refiner.space,
        resolved_threads,
        refiner.core_evaluations,
        refiner
            .master
            .iter()
            .map(|(&i, outcome)| (i, outcome.clone()))
            .collect(),
    );
    if !obs(phase, &snapshot, &fresh) {
        return Err(observer_abort());
    }
    Ok(())
}

/// Explores `space` coarse-to-fine with automatically chosen starting
/// strides on both axes: the portfolio twin of
/// [`crate::portfolio::explore_portfolio`], returning the same sparse
/// result type with skipped cells recorded as [`CellOutcome::Pruned`].
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`].
pub fn explore_portfolio_refined(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_with(lib, space, threads, RefineOptions::default())
}

/// Explores a single-system space coarse-to-fine: the refinement twin of
/// [`crate::explore::explore`].
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`] (the single-system axes are
/// validated with this module's messages first).
pub fn explore_refined(
    lib: &TechLibrary,
    space: &ExploreSpace,
    threads: usize,
) -> Result<ExploreResult, ArchError> {
    explore_refined_with(lib, space, threads, RefineOptions::default())
}

/// [`explore_refined`] with explicit per-axis strides (the single-system
/// home of `--quantity-stride`).
///
/// # Errors
///
/// See [`explore_refined`].
pub fn explore_refined_with(
    lib: &TechLibrary,
    space: &ExploreSpace,
    threads: usize,
    options: RefineOptions,
) -> Result<ExploreResult, ArchError> {
    space.validate()?;
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    let lifted = PortfolioSpace::from_single_system(space);
    let inner = explore_portfolio_refined_with(lib, &lifted, threads, options)?;
    Ok(ExploreResult::from_inner(space, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::ReuseScheme;
    use actuary_model::AssemblyFlow;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn strides(area_stride: usize, quantity_stride: usize) -> RefineOptions {
        RefineOptions {
            area_stride,
            quantity_stride,
        }
    }

    /// A 16-area ramp across every scheme: large enough for real gaps,
    /// small enough to exhaust as the reference.
    fn ramp_space() -> PortfolioSpace {
        PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: (1..=16).map(|i| f64::from(i) * 60.0).collect(),
            quantities: vec![500_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: ReuseScheme::ALL.to_vec(),
            ..PortfolioSpace::default()
        }
    }

    /// A quantity-heavy ramp crossing the §4.2 crossover band: 12
    /// quantities give the quantity axis real gaps to skip.
    fn quantity_ramp_space() -> PortfolioSpace {
        PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: (1..=8).map(|i| f64::from(i) * 100.0).collect(),
            quantities: (1..=12).map(|i| i * 1_000_000).collect(),
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: vec![ReuseScheme::None, ReuseScheme::Scms],
            ..PortfolioSpace::default()
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        assert_eq!("refine".parse::<ExploreMode>(), Ok(ExploreMode::Refine));
        assert_eq!(
            "Exhaustive".parse::<ExploreMode>(),
            Ok(ExploreMode::Exhaustive)
        );
        assert_eq!(ExploreMode::Refine.to_string(), "refine");
        assert!("adaptive".parse::<ExploreMode>().is_err());
    }

    #[test]
    fn auto_stride_grows_with_the_axis() {
        assert_eq!(auto_stride(3), 1);
        assert_eq!(auto_stride(9), 2);
        assert_eq!(auto_stride(16), 4);
        assert_eq!(auto_stride(100), 8);
        assert_eq!(auto_stride(500), 16);
    }

    #[test]
    fn refinement_requires_an_ordered_area_axis() {
        let space = PortfolioSpace {
            areas_mm2: vec![400.0, 200.0],
            ..ramp_space()
        };
        let err = explore_portfolio_refined(&lib(), &space, 1).unwrap_err();
        assert!(
            err.to_string().contains("strictly increasing areas_mm2"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn refinement_requires_an_ordered_quantity_axis() {
        let space = PortfolioSpace {
            quantities: vec![10_000_000, 500_000],
            ..ramp_space()
        };
        let err = explore_portfolio_refined(&lib(), &space, 1).unwrap_err();
        assert!(
            err.to_string().contains("strictly increasing quantities"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn refined_winners_and_fronts_match_exhaustion_across_strides_and_threads() {
        let lib = lib();
        let space = ramp_space();
        let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
        for (stride, threads) in [(2, 1), (4, 1), (4, 4), (8, 4)] {
            let refined =
                explore_portfolio_refined_with(&lib, &space, threads, strides(stride, 0)).unwrap();
            assert_eq!(refined.len(), exhaustive.len());
            assert_eq!(
                refined.winners_artifact().csv(),
                exhaustive.winners_artifact().csv(),
                "stride={stride} threads={threads}: winner tables must be byte-identical"
            );
            assert_eq!(
                refined.pareto_artifact().csv(),
                exhaustive.pareto_artifact().csv(),
                "stride={stride} threads={threads}: Pareto fronts must be byte-identical"
            );
            assert_eq!(
                refined.pareto_program_artifact().csv(),
                exhaustive.pareto_program_artifact().csv(),
                "stride={stride} threads={threads}"
            );
            // Every cell accounted for: evaluated + re-derived + pruned.
            assert_eq!(
                refined.feasible_count()
                    + refined.infeasible_count()
                    + refined.incompatible_count()
                    + refined.pruned_count(),
                refined.len(),
                "stride={stride} threads={threads}"
            );
        }
    }

    #[test]
    fn two_axis_refinement_matches_exhaustion() {
        let lib = lib();
        let space = quantity_ramp_space();
        let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
        for (astride, qstride) in [(4, 4), (2, 4), (4, 3), (1, 4)] {
            let refined =
                explore_portfolio_refined_with(&lib, &space, 2, strides(astride, qstride)).unwrap();
            assert_eq!(
                refined.winners_artifact().csv(),
                exhaustive.winners_artifact().csv(),
                "area_stride={astride} quantity_stride={qstride}"
            );
            assert_eq!(
                refined.pareto_artifact().csv(),
                exhaustive.pareto_artifact().csv(),
                "area_stride={astride} quantity_stride={qstride}"
            );
            assert_eq!(
                refined.pareto_program_artifact().csv(),
                exhaustive.pareto_program_artifact().csv(),
                "area_stride={astride} quantity_stride={qstride}"
            );
            assert!(
                refined.pruned_count() > 0,
                "area_stride={astride} quantity_stride={qstride}: 2-D refinement must prune"
            );
            assert_eq!(
                refined.feasible_count()
                    + refined.infeasible_count()
                    + refined.incompatible_count()
                    + refined.pruned_count(),
                refined.len(),
                "area_stride={astride} quantity_stride={qstride}"
            );
        }
    }

    #[test]
    fn refinement_is_thread_count_independent() {
        let lib = lib();
        let space = quantity_ramp_space();
        let serial = explore_portfolio_refined_with(&lib, &space, 1, strides(4, 4)).unwrap();
        let parallel = explore_portfolio_refined_with(&lib, &space, 4, strides(4, 4)).unwrap();
        // The refinement decisions (and therefore the evaluated set, the
        // grid CSV and the pruned accounting) must not depend on threads.
        assert_eq!(serial.grid_artifact().csv(), parallel.grid_artifact().csv());
        assert_eq!(serial.pruned_count(), parallel.pruned_count());
        assert_eq!(serial.core_evaluations(), parallel.core_evaluations());
    }

    #[test]
    fn tiny_axes_fall_back_to_exhaustion() {
        let lib = lib();
        let space = PortfolioSpace {
            areas_mm2: vec![200.0, 800.0],
            ..ramp_space()
        };
        let refined = explore_portfolio_refined(&lib, &space, 1).unwrap();
        let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(
            refined.grid_artifact().csv(),
            exhaustive.grid_artifact().csv()
        );
        assert_eq!(refined.pruned_count(), 0);
    }

    #[test]
    fn observer_sees_every_stored_cell_in_phase_order() {
        let lib = lib();
        let space = quantity_ramp_space();
        let mut phases: Vec<RefinePhase> = Vec::new();
        let mut streamed: BTreeSet<usize> = BTreeSet::new();
        let mut observer = |phase: RefinePhase, partial: &PortfolioResult, fresh: &[usize]| {
            phases.push(phase);
            assert!(fresh.windows(2).all(|w| w[0] < w[1]), "fresh cells sorted");
            for &i in fresh {
                assert!(
                    streamed.insert(i),
                    "cell {i} streamed twice (phase {phase:?})"
                );
            }
            // Every streamed cell is visible in the partial snapshot.
            assert!(streamed.len() <= partial.len());
            true
        };
        let result = explore_portfolio_refined_observed(
            &lib,
            &space,
            2,
            strides(4, 4),
            None,
            Some(&mut observer),
        )
        .unwrap();
        assert_eq!(
            phases,
            vec![
                RefinePhase::Coarse,
                RefinePhase::Bisect,
                RefinePhase::Fill,
                RefinePhase::Escalate
            ]
        );
        let stored: BTreeSet<usize> = result.stored_entries().iter().map(|(i, _)| *i).collect();
        assert_eq!(
            streamed, stored,
            "the streamed segments union to exactly the stored cells"
        );
    }

    #[test]
    fn observer_abort_stops_the_run() {
        let lib = lib();
        let space = quantity_ramp_space();
        let mut observer = |_: RefinePhase, _: &PortfolioResult, _: &[usize]| false;
        let err = explore_portfolio_refined_observed(
            &lib,
            &space,
            1,
            strides(4, 4),
            None,
            Some(&mut observer),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("aborted"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn single_system_refinement_matches_explore() {
        let lib = lib();
        let space = ExploreSpace {
            nodes: vec!["14nm".to_string(), "5nm".to_string()],
            areas_mm2: (1..=12).map(|i| f64::from(i) * 80.0).collect(),
            quantities: vec![500_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flow: AssemblyFlow::ChipLast,
        };
        let exhaustive = crate::explore::explore(&lib, &space, 2).unwrap();
        let refined = explore_refined(&lib, &space, 2).unwrap();
        assert_eq!(
            refined.winners_artifact().csv(),
            exhaustive.winners_artifact().csv()
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            exhaustive.pareto_artifact().csv()
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            exhaustive.pareto_program_artifact().csv()
        );
    }

    #[test]
    fn refined_shared_matches_refined_and_reuses_warm_cores() {
        let lib = lib();
        let space = ramp_space();
        let reference = explore_portfolio_refined(&lib, &space, 2).unwrap();

        let cache = SharedCoreCache::new(4096);
        let cold = explore_portfolio_refined_shared(&lib, &space, 2, &cache, [9; 32]).unwrap();
        assert_eq!(
            cold.winners_artifact().csv(),
            reference.winners_artifact().csv()
        );
        assert_eq!(
            cold.pareto_artifact().csv(),
            reference.pareto_artifact().csv()
        );
        // Both paths dedup within the run (the unshared path through a
        // run-private cache), so the cold shared pass does exactly the
        // reference's distinct-core evaluations.
        assert!(cold.core_evaluations() > 0);
        assert!(cold.core_evaluations() <= reference.core_evaluations());

        // Warm rerun: refinement takes the same adaptive path, and every
        // core it asks for is already resident.
        let warm = explore_portfolio_refined_shared(&lib, &space, 2, &cache, [9; 32]).unwrap();
        assert_eq!(
            warm.winners_artifact().csv(),
            reference.winners_artifact().csv()
        );
        assert_eq!(warm.core_evaluations(), 0);
    }
}
