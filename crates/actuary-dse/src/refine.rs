//! Coarse-to-fine grid refinement: the exhaustive engines' winner tables
//! and Pareto fronts at a fraction of the full core evaluations.
//!
//! The exhaustive engines ([`crate::explore`], [`crate::portfolio`]) price
//! every cell of the axis product. The paper's successors explore spaces
//! where that product reaches 10⁸ cells (Tang & Xie, arXiv:2206.07308;
//! CATCH, arXiv:2503.15753) — far past what full enumeration can serve.
//! This module exploits the structure those grids actually have: along the
//! *area* axis, per-scheme winners and Pareto-front membership are
//! piecewise-constant with a handful of crossover points (the paper's §4
//! crossovers are exactly such points). The driver therefore:
//!
//! 1. **samples** a stride-spaced subgrid of the area axis (every
//!    configuration, every node and quantity) plus the last area;
//! 2. **bisects** every sampled gap whose endpoints disagree — a
//!    per-scheme winner flip at any (node, quantity) operating point, or a
//!    change in which configurations sit on a scheme's Pareto fronts —
//!    until each disagreement is bracketed by adjacent areas, pricing each
//!    midpoint only on the *candidate configurations* its gap endpoints
//!    consider relevant: their winners at every operating point, their
//!    front members, and the winners' monolithic baselines;
//! 3. **fills** each remaining (provably quiet) gap the same way — a
//!    handful of candidate configurations per gap instead of the full
//!    breadth;
//! 4. **escalates** until stable: each side of a still-disagreeing
//!    boundary must have priced every configuration that wins or sits on
//!    a front on the other side — any it skipped gets priced now, so a
//!    crossover can't hide behind a narrow evaluation.
//!
//! Skipped cells are recorded as [`CellOutcome::Pruned`] in the sparse
//! result; counts, artifacts and grid order are unchanged.
//!
//! # Exact vs heuristic
//!
//! Refinement is *exact* — byte-identical winner tables and Pareto fronts
//! to the exhaustive engine — whenever winner regions and front
//! membership are contiguous along the area axis, which the bisection
//! step then brackets completely. It is heuristic against structure that
//! is invisible at every evaluated area: a configuration that wins (or
//! joins a front) only strictly inside an unevaluated gap while both
//! endpoints agree on a different picture. The reference tests pin the
//! exact case on tier-1-sized grids across strides and thread counts;
//! `core_evaluations()` reports the honest total work, counting every
//! sub-evaluation performed (a core re-evaluated by a later pass counts
//! again).
//!
//! # Examples
//!
//! ```
//! use actuary_dse::explore::ExploreSpace;
//! use actuary_dse::refine::explore_refined;
//! use actuary_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let space = ExploreSpace {
//!     nodes: vec!["7nm".to_string()],
//!     areas_mm2: (1..=30).map(|i| f64::from(i) * 30.0).collect(),
//!     quantities: vec![2_000_000],
//!     ..ExploreSpace::default()
//! };
//! let refined = explore_refined(&lib, &space, 2)?;
//! assert_eq!(refined.len(), space.len());
//! // Pruned cells are accounted for, never silently dropped.
//! assert_eq!(
//!     refined.feasible_count()
//!         + refined.infeasible_count()
//!         + refined.incompatible_count()
//!         + refined.pruned_count(),
//!     refined.len()
//! );
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use actuary_arch::ArchError;
use actuary_tech::{IntegrationKind, TechLibrary};

use crate::engine::resolve_threads;
use crate::explore::{CellOutcome, ExploreResult, ExploreSpace};
use crate::pareto::pareto_min_indices;
use crate::portfolio::{
    explore_portfolio, explore_portfolio_shared, explore_portfolio_with, CellIdx, CorePolicy,
    GridShape, PortfolioResult, PortfolioSpace, SharedCoreCache,
};

/// How an exploration request walks its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Evaluate every cell (the reference path).
    Exhaustive,
    /// Coarse-to-fine refinement over the area axis (this module).
    Refine,
}

impl ExploreMode {
    /// Stable lower-case label (used on the CLI and in scenario files).
    pub fn label(self) -> &'static str {
        match self {
            ExploreMode::Exhaustive => "exhaustive",
            ExploreMode::Refine => "refine",
        }
    }
}

impl fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExploreMode {
    type Err = String;

    /// Parses the user-facing mode grammar (case-insensitive) — the single
    /// definition the CLI flag and the scenario schema both use.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "exhaustive" => Ok(ExploreMode::Exhaustive),
            "refine" | "refined" => Ok(ExploreMode::Refine),
            other => Err(format!(
                "unknown explore mode {other:?} (exhaustive|refine)"
            )),
        }
    }
}

/// A configuration point of one operating point's block: indices into the
/// (integration, chiplet count, flow, scheme variant) axes.
type Config = (usize, usize, usize, usize);

/// How thoroughly an area has been evaluated so far: every configuration,
/// or the union of the restricted (integration, chiplet, flow) axis
/// products it has been priced on. Recording the products — not just a
/// restricted/full bit — lets the escalation pass ask the precise
/// question that matters for exactness: "has this area priced the
/// configuration that wins next door?"
#[derive(Debug, Clone)]
enum Coverage {
    /// Every configuration.
    Full,
    /// Only the recorded axis products.
    Products(Vec<ConfigFilter>),
}

struct Refiner<'a> {
    lib: &'a TechLibrary,
    space: &'a PortfolioSpace,
    /// The caller's thread request, passed through to every sub-run.
    threads: usize,
    shape: GridShape,
    /// Variant index → position of its scheme in `space.schemes`.
    scheme_pos: Vec<usize>,
    /// Evaluated cells by flat master-grid index.
    master: BTreeMap<usize, CellOutcome>,
    /// Pricing coverage per evaluated area index.
    coverage: BTreeMap<usize, Coverage>,
    core_evaluations: usize,
    /// When present, every sub-run reuses cores through this cross-call
    /// cache under the given library tag.
    shared: Option<(&'a SharedCoreCache, [u8; 32])>,
}

impl<'a> Refiner<'a> {
    fn new(
        lib: &'a TechLibrary,
        space: &'a PortfolioSpace,
        threads: usize,
        shared: Option<(&'a SharedCoreCache, [u8; 32])>,
    ) -> Self {
        let variants = space.scheme_variants();
        let scheme_pos = variants
            .iter()
            .map(|v| {
                space
                    .schemes
                    .iter()
                    .position(|&s| s == v.scheme)
                    .expect("variants come from the scheme axis")
            })
            .collect();
        Refiner {
            lib,
            space,
            threads,
            shape: GridShape::of(space, variants.len()),
            scheme_pos,
            master: BTreeMap::new(),
            coverage: BTreeMap::new(),
            core_evaluations: 0,
            shared,
        }
    }

    /// Evaluates the given master-axis areas through the exhaustive engine
    /// — every configuration when `filter` is `None`, the filtered
    /// (integration, chiplet, flow) index product otherwise — and merges
    /// the evaluated cells into the master store. Scheme axes are always
    /// carried whole so variant indices map one-to-one.
    fn eval_areas(
        &mut self,
        areas: &BTreeSet<usize>,
        filter: Option<&ConfigFilter>,
    ) -> Result<(), ArchError> {
        if areas.is_empty() {
            return Ok(());
        }
        let area_list: Vec<usize> = areas.iter().copied().collect();
        let full = ConfigFilter {
            integrations: (0..self.shape.integrations).collect(),
            chiplets: (0..self.shape.chiplets).collect(),
            flows: (0..self.shape.flows).collect(),
        };
        let restriction = filter;
        let filter = filter.unwrap_or(&full);
        let sub = PortfolioSpace {
            nodes: self.space.nodes.clone(),
            areas_mm2: area_list.iter().map(|&a| self.space.areas_mm2[a]).collect(),
            quantities: self.space.quantities.clone(),
            integrations: filter
                .integrations
                .iter()
                .map(|&i| self.space.integrations[i])
                .collect(),
            chiplet_counts: filter
                .chiplets
                .iter()
                .map(|&c| self.space.chiplet_counts[c])
                .collect(),
            flows: filter.flows.iter().map(|&f| self.space.flows[f]).collect(),
            schemes: self.space.schemes.clone(),
            scms_multiplicities: self.space.scms_multiplicities.clone(),
            fsmc_situations: self.space.fsmc_situations.clone(),
            ocme_center_nodes: self.space.ocme_center_nodes.clone(),
            package_reuse: self.space.package_reuse,
        };
        let result = match self.shared {
            Some((cache, tag)) => {
                explore_portfolio_shared(self.lib, &sub, self.threads, cache, tag)?
            }
            None => explore_portfolio_with(self.lib, &sub, self.threads, CorePolicy::Cached)?,
        };
        self.core_evaluations += result.core_evaluations();
        let sub_shape = result.shape();
        for (sub_i, outcome) in result.stored_entries() {
            let c = sub_shape.coords(*sub_i);
            let master_idx = self.shape.index(CellIdx {
                node: c.node,
                area: area_list[c.area],
                quantity: c.quantity,
                integration: filter.integrations[c.integration],
                chiplets: filter.chiplets[c.chiplets],
                flow: filter.flows[c.flow],
                variant: c.variant,
            });
            self.master.insert(master_idx, outcome.clone());
        }
        for &a in &area_list {
            let entry = self
                .coverage
                .entry(a)
                .or_insert_with(|| Coverage::Products(Vec::new()));
            match (restriction, &mut *entry) {
                (None, entry) => *entry = Coverage::Full,
                (Some(f), Coverage::Products(products)) => products.push(f.clone()),
                (Some(_), Coverage::Full) => {}
            }
        }
        Ok(())
    }

    /// Whether the area has been evaluated at every configuration.
    fn is_full(&self, area: usize) -> bool {
        matches!(self.coverage.get(&area), Some(Coverage::Full))
    }

    /// Whether the area's evaluations so far have priced the given
    /// configuration (the variant axis is always carried whole, so only
    /// the filtered axes decide).
    fn priced(&self, area: usize, config: Config) -> bool {
        match self.coverage.get(&area) {
            Some(Coverage::Full) => true,
            Some(Coverage::Products(products)) => products.iter().any(|f| {
                f.integrations.contains(&config.0)
                    && f.chiplets.contains(&config.1)
                    && f.flows.contains(&config.2)
            }),
            None => false,
        }
    }

    /// The current per-scheme winner of every (node, quantity, area)
    /// operating point: first strict minimum in grid order, matching the
    /// exhaustive winner tables' tie rule. Keyed
    /// (scheme position, node, quantity, area).
    fn winner_map(&self) -> BTreeMap<(usize, usize, usize, usize), (Config, f64)> {
        let mut winners: BTreeMap<(usize, usize, usize, usize), (Config, f64)> = BTreeMap::new();
        for (&i, outcome) in &self.master {
            let CellOutcome::Feasible(c) = outcome else {
                continue;
            };
            let idx = self.shape.coords(i);
            let key = (
                self.scheme_pos[idx.variant],
                idx.node,
                idx.quantity,
                idx.area,
            );
            let cost = c.per_unit.usd();
            let config = (idx.integration, idx.chiplets, idx.flow, idx.variant);
            match winners.get(&key) {
                Some((_, best)) if cost >= *best => {}
                _ => {
                    winners.insert(key, (config, cost));
                }
            }
        }
        winners
    }

    /// Which configurations sit on each scheme's Pareto fronts (both the
    /// per-unit × chiplet-count and the program-total × per-unit front),
    /// grouped by area.
    fn front_map(&self) -> BTreeMap<usize, BTreeSet<Config>> {
        let mut fronts: BTreeMap<usize, BTreeSet<Config>> = BTreeMap::new();
        for s_pos in 0..self.space.schemes.len() {
            // (flat index, per-unit, chiplet count, program total)
            let mut cells: Vec<(usize, f64, f64, f64)> = Vec::new();
            for (&i, outcome) in &self.master {
                let CellOutcome::Feasible(c) = outcome else {
                    continue;
                };
                let idx = self.shape.coords(i);
                if self.scheme_pos[idx.variant] != s_pos {
                    continue;
                }
                let per_unit = c.per_unit.usd();
                cells.push((
                    i,
                    per_unit,
                    f64::from(self.space.chiplet_counts[idx.chiplets]),
                    per_unit * self.space.quantities[idx.quantity] as f64,
                ));
            }
            let chip_points: Vec<(f64, f64)> = cells.iter().map(|&(_, p, ch, _)| (p, ch)).collect();
            let program_points: Vec<(f64, f64)> =
                cells.iter().map(|&(_, p, _, pr)| (pr, p)).collect();
            for k in pareto_min_indices(&chip_points)
                .into_iter()
                .chain(pareto_min_indices(&program_points))
            {
                let idx = self.shape.coords(cells[k].0);
                fronts.entry(idx.area).or_default().insert((
                    idx.integration,
                    idx.chiplets,
                    idx.flow,
                    idx.variant,
                ));
            }
        }
        fronts
    }

    /// The candidate configurations the given areas consider relevant:
    /// their per-operating-point winners and their Pareto-front members.
    fn candidates_at(
        &self,
        winners: &BTreeMap<(usize, usize, usize, usize), (Config, f64)>,
        fronts: &BTreeMap<usize, BTreeSet<Config>>,
        areas: &[usize],
    ) -> BTreeSet<Config> {
        let mut candidates: BTreeSet<Config> = BTreeSet::new();
        let local_winners = winners
            .iter()
            .filter(|((_, _, _, a), _)| areas.contains(a))
            .map(|(_, (config, _))| *config);
        candidates.extend(local_winners);
        for a in areas {
            if let Some(members) = fronts.get(a) {
                candidates.extend(members.iter().copied());
            }
        }
        candidates
    }

    /// The monolithic-baseline companion of a restricted filter: whatever
    /// SoC cells the main product misses that a winner it can produce
    /// would quote its saving against — SoC at the same chiplet count for
    /// the family schemes, SoC at chiplet count 1 for scheme-free cells.
    /// Kept separate from the main product so the chiplet-1 baseline
    /// can't drag a narrow chiplet range back toward full breadth.
    fn baseline_filter(&self, main: &ConfigFilter) -> Option<ConfigFilter> {
        let soc = self
            .space
            .integrations
            .iter()
            .position(|&k| k == IntegrationKind::Soc)?;
        let mut chiplets: BTreeSet<usize> = if main.integrations.contains(&soc) {
            BTreeSet::new()
        } else {
            main.chiplets.iter().copied().collect()
        };
        if let Some(one) = self.space.chiplet_counts.iter().position(|&c| c == 1) {
            if !(main.integrations.contains(&soc) && main.chiplets.contains(&one)) {
                chiplets.insert(one);
            }
        }
        if chiplets.is_empty() {
            return None;
        }
        Some(ConfigFilter {
            integrations: vec![soc],
            chiplets: chiplets.into_iter().collect(),
            flows: main.flows.clone(),
        })
    }

    /// Evaluates the areas on the contiguous axis product spanning the
    /// given configurations, plus the monolithic baselines that product
    /// misses.
    fn eval_restricted(
        &mut self,
        areas: &BTreeSet<usize>,
        configs: &[Config],
    ) -> Result<(), ArchError> {
        let main = ConfigFilter::spanning(configs);
        let baseline = self.baseline_filter(&main);
        self.eval_areas(areas, Some(&main))?;
        if let Some(baseline) = baseline {
            self.eval_areas(areas, Some(&baseline))?;
        }
        Ok(())
    }

    /// Whether areas `lo` and `hi` disagree: a per-scheme winner flip at
    /// any operating point, or a difference in front membership.
    fn differs(
        &self,
        winners: &BTreeMap<(usize, usize, usize, usize), (Config, f64)>,
        fronts: &BTreeMap<usize, BTreeSet<Config>>,
        lo: usize,
        hi: usize,
    ) -> bool {
        for s in 0..self.space.schemes.len() {
            for n in 0..self.shape.nodes {
                for q in 0..self.shape.quantities {
                    let at = |a: usize| winners.get(&(s, n, q, a)).map(|(config, _)| *config);
                    if at(lo) != at(hi) {
                        return true;
                    }
                }
            }
        }
        let empty = BTreeSet::new();
        fronts.get(&lo).unwrap_or(&empty) != fronts.get(&hi).unwrap_or(&empty)
    }
}

/// The (integration, chiplet count, flow) axis-index subsets a restricted
/// evaluation covers.
#[derive(Debug, Clone)]
struct ConfigFilter {
    integrations: Vec<usize>,
    chiplets: Vec<usize>,
    flows: Vec<usize>,
}

impl ConfigFilter {
    /// The smallest *contiguous* axis product covering every given
    /// configuration: per axis, every index between the smallest and
    /// largest one used. Contiguity is deliberate — winner structure
    /// moves monotonically along the ordered axes (larger areas favour
    /// more chiplets and climb the integration ladder), so a
    /// configuration that wins strictly between two bracketing winners
    /// almost always sits between them on each axis too, and the range
    /// prices it where the bare index set would miss it.
    fn spanning(configs: &[Config]) -> ConfigFilter {
        let mut ranges = [(usize::MAX, 0usize); 3];
        for &(i, c, f, _) in configs {
            for (range, v) in ranges.iter_mut().zip([i, c, f]) {
                range.0 = range.0.min(v);
                range.1 = range.1.max(v);
            }
        }
        let [integrations, chiplets, flows] = ranges.map(|(lo, hi)| (lo..=hi).collect());
        ConfigFilter {
            integrations,
            chiplets,
            flows,
        }
    }
}

/// The stride refinement starts from: covers the area axis with roughly
/// `4 × stride` coarse samples, doubling as long as the axis affords it.
fn auto_stride(areas: usize) -> usize {
    let mut stride = 1;
    while stride * stride * 4 <= areas {
        stride *= 2;
    }
    stride
}

/// [`explore_portfolio_refined`] with an explicit starting stride
/// (`0` = automatic). Exposed so the benches and the reference tests can
/// force coarse starts on small grids.
///
/// # Errors
///
/// Everything [`crate::portfolio::explore_portfolio`] raises, plus
/// [`ArchError::InvalidArchitecture`] when the area axis is not strictly
/// increasing (refinement bisects area gaps, so the axis must be ordered).
pub fn explore_portfolio_refined_with(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    stride: usize,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_impl(lib, space, threads, stride, None)
}

/// [`explore_portfolio_refined`] with cores reused *across calls* through
/// `cache` under the given library `tag` — the refinement twin of
/// [`explore_portfolio_shared`]. Every coarse, bisection, fill and
/// escalation sub-run consults the cache, so overlapping requests skip
/// straight to amortization.
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`].
pub fn explore_portfolio_refined_shared(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    cache: &SharedCoreCache,
    tag: [u8; 32],
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_impl(lib, space, threads, 0, Some((cache, tag)))
}

fn explore_portfolio_refined_impl(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
    stride: usize,
    shared: Option<(&SharedCoreCache, [u8; 32])>,
) -> Result<PortfolioResult, ArchError> {
    space.validate()?;
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    for center in space.ocme_center_nodes.iter().flatten() {
        lib.node(center).map_err(ArchError::Tech)?;
    }
    if !space.areas_mm2.windows(2).all(|w| w[0] < w[1]) {
        return Err(ArchError::InvalidArchitecture {
            reason: "coarse-to-fine refinement requires a strictly increasing areas_mm2 axis"
                .to_string(),
        });
    }
    let areas = space.areas_mm2.len();
    let stride = if stride == 0 {
        auto_stride(areas)
    } else {
        stride
    };
    if stride <= 1 || areas <= 2 {
        // Nothing to skip: the coarse pass would already be exhaustive.
        return match shared {
            Some((cache, tag)) => explore_portfolio_shared(lib, space, threads, cache, tag),
            None => explore_portfolio(lib, space, threads),
        };
    }

    let mut refiner = Refiner::new(lib, space, threads, shared);

    // 1. Coarse pass: stride-sampled areas plus the axis endpoint, every
    //    configuration. Each pass below closes a span recording cumulative
    //    coverage and core-evaluation counts; watch them with
    //    `--log-level debug` or via the `actuary_engine_phase_seconds`
    //    histogram on `/metricsz`.
    let mut coarse_span = actuary_obs::span!("refine.coarse");
    let mut coarse: BTreeSet<usize> = (0..areas).step_by(stride).collect();
    coarse.insert(areas - 1);
    refiner.eval_areas(&coarse, None)?;
    coarse_span.record("areas_evaluated", refiner.coverage.len() as u64);
    coarse_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(coarse_span);

    // 2. Bisection: split every gap whose endpoints disagree until each
    //    disagreement is bracketed by adjacent areas. Midpoints are priced
    //    only on the configurations their gap endpoints consider relevant
    //    — winner flips are dense along a fine area axis, so full-breadth
    //    midpoints would dominate the whole run; the escalation pass below
    //    re-prices any boundary this narrowness gets wrong. Each area is
    //    evaluated at most once here, so this terminates.
    let mut bisect_span = actuary_obs::span!("refine.bisect");
    loop {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let evaluated: Vec<usize> = refiner.coverage.keys().copied().collect();
        let mut requests: BTreeMap<Vec<Config>, BTreeSet<usize>> = BTreeMap::new();
        let mut full_requests: BTreeSet<usize> = BTreeSet::new();
        for pair in evaluated.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if hi - lo > 1 && refiner.differs(&winners, &fronts, lo, hi) {
                let mid = lo + (hi - lo) / 2;
                let local = refiner.candidates_at(&winners, &fronts, &[lo, hi]);
                if local.is_empty() {
                    full_requests.insert(mid);
                } else {
                    requests
                        .entry(local.into_iter().collect())
                        .or_default()
                        .insert(mid);
                }
            }
        }
        if requests.is_empty() && full_requests.is_empty() {
            break;
        }
        refiner.eval_areas(&full_requests, None)?;
        for (local, mids) in requests {
            refiner.eval_restricted(&mids, &local)?;
        }
    }

    bisect_span.record("areas_evaluated", refiner.coverage.len() as u64);
    bisect_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(bisect_span);

    // 3.+4. Fill each quiet gap with only the configurations its two
    //    (agreeing) endpoints consider relevant — the sub-space is an axis
    //    product, so a *global* candidate union would multiply back out
    //    toward full breadth, while per-gap candidates stay a handful.
    //    Gaps that resolve to the same candidate set batch into one run.
    let mut fill_span = actuary_obs::span!("refine.fill");
    {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let evaluated: Vec<usize> = refiner.coverage.keys().copied().collect();
        let mut fills: BTreeMap<Vec<Config>, BTreeSet<usize>> = BTreeMap::new();
        let mut full_fills: BTreeSet<usize> = BTreeSet::new();
        for pair in evaluated.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if hi - lo <= 1 {
                continue;
            }
            let local = refiner.candidates_at(&winners, &fronts, &[lo, hi]);
            if local.is_empty() {
                // Nothing feasible at either endpoint: no structure to
                // trust inside the gap.
                full_fills.extend(lo + 1..hi);
            } else {
                fills
                    .entry(local.into_iter().collect())
                    .or_default()
                    .extend(lo + 1..hi);
            }
        }
        refiner.eval_areas(&full_fills, None)?;
        for (local, gap_areas) in fills {
            refiner.eval_restricted(&gap_areas, &local)?;
        }
    }

    fill_span.record("areas_evaluated", refiner.coverage.len() as u64);
    fill_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(fill_span);

    // 5. Escalate: every boundary disagreement that survives bisection and
    //    fill should be genuine structure — but a narrowly priced area is
    //    only trustworthy evidence of that if it actually priced the
    //    configurations winning (or sitting on the fronts) right next
    //    door. Re-price each suspect area on exactly the configurations it
    //    is missing; winners may shift as cheaper configs come into view,
    //    so loop until every disagreeing boundary is mutually priced.
    //    Coverage only ever grows, so this terminates.
    let mut escalate_span = actuary_obs::span!("refine.escalate");
    loop {
        let winners = refiner.winner_map();
        let fronts = refiner.front_map();
        let mut escalate: BTreeMap<usize, BTreeSet<Config>> = BTreeMap::new();
        for lo in 0..areas.saturating_sub(1) {
            let hi = lo + 1;
            if (refiner.is_full(lo) && refiner.is_full(hi))
                || !refiner.differs(&winners, &fronts, lo, hi)
            {
                continue;
            }
            for (a, b) in [(lo, hi), (hi, lo)] {
                if refiner.is_full(a) {
                    continue;
                }
                let missing: BTreeSet<Config> = refiner
                    .candidates_at(&winners, &fronts, &[b])
                    .into_iter()
                    .filter(|&c| !refiner.priced(a, c))
                    .collect();
                if !missing.is_empty() {
                    escalate.entry(a).or_default().extend(missing);
                }
            }
        }
        if escalate.is_empty() {
            break;
        }
        for (a, missing) in escalate {
            let missing: Vec<Config> = missing.into_iter().collect();
            refiner.eval_restricted(&BTreeSet::from([a]), &missing)?;
        }
    }

    escalate_span.record("areas_evaluated", refiner.coverage.len() as u64);
    escalate_span.record("core_evaluations", refiner.core_evaluations as u64);
    drop(escalate_span);

    if actuary_obs::log::enabled(actuary_obs::log::Level::Debug) {
        let full = (0..areas).filter(|&a| refiner.is_full(a)).count();
        actuary_obs::log::event(
            actuary_obs::log::Level::Debug,
            "refine.summary",
            &[
                ("areas", areas.into()),
                ("full", full.into()),
                ("restricted", (refiner.coverage.len() - full).into()),
                ("unevaluated", (areas - refiner.coverage.len()).into()),
                ("core_evaluations", refiner.core_evaluations.into()),
            ],
        );
    }
    let threads = resolve_threads(threads, space.len());
    Ok(PortfolioResult::from_parts(
        space,
        threads,
        refiner.core_evaluations,
        refiner.master.into_iter().collect(),
    ))
}

/// Explores `space` coarse-to-fine with an automatically chosen starting
/// stride: the portfolio twin of [`crate::portfolio::explore_portfolio`],
/// returning the same sparse result type with skipped cells recorded as
/// [`CellOutcome::Pruned`].
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`].
pub fn explore_portfolio_refined(
    lib: &TechLibrary,
    space: &PortfolioSpace,
    threads: usize,
) -> Result<PortfolioResult, ArchError> {
    explore_portfolio_refined_with(lib, space, threads, 0)
}

/// Explores a single-system space coarse-to-fine: the refinement twin of
/// [`crate::explore::explore`].
///
/// # Errors
///
/// See [`explore_portfolio_refined_with`] (the single-system axes are
/// validated with this module's messages first).
pub fn explore_refined(
    lib: &TechLibrary,
    space: &ExploreSpace,
    threads: usize,
) -> Result<ExploreResult, ArchError> {
    space.validate()?;
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    let lifted = PortfolioSpace::from_single_system(space);
    let inner = explore_portfolio_refined(lib, &lifted, threads)?;
    Ok(ExploreResult::from_inner(space, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::ReuseScheme;
    use actuary_model::AssemblyFlow;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    /// A 16-area ramp across every scheme: large enough for real gaps,
    /// small enough to exhaust as the reference.
    fn ramp_space() -> PortfolioSpace {
        PortfolioSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: (1..=16).map(|i| f64::from(i) * 60.0).collect(),
            quantities: vec![500_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flows: vec![AssemblyFlow::ChipLast],
            schemes: ReuseScheme::ALL.to_vec(),
            ..PortfolioSpace::default()
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        assert_eq!("refine".parse::<ExploreMode>(), Ok(ExploreMode::Refine));
        assert_eq!(
            "Exhaustive".parse::<ExploreMode>(),
            Ok(ExploreMode::Exhaustive)
        );
        assert_eq!(ExploreMode::Refine.to_string(), "refine");
        assert!("adaptive".parse::<ExploreMode>().is_err());
    }

    #[test]
    fn auto_stride_grows_with_the_area_axis() {
        assert_eq!(auto_stride(3), 1);
        assert_eq!(auto_stride(9), 2);
        assert_eq!(auto_stride(16), 4);
        assert_eq!(auto_stride(100), 8);
        assert_eq!(auto_stride(500), 16);
    }

    #[test]
    fn refinement_requires_an_ordered_area_axis() {
        let space = PortfolioSpace {
            areas_mm2: vec![400.0, 200.0],
            ..ramp_space()
        };
        let err = explore_portfolio_refined(&lib(), &space, 1).unwrap_err();
        assert!(
            err.to_string().contains("strictly increasing"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn refined_winners_and_fronts_match_exhaustion_across_strides_and_threads() {
        let lib = lib();
        let space = ramp_space();
        let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
        for (stride, threads) in [(2, 1), (4, 1), (4, 4), (8, 4)] {
            let refined = explore_portfolio_refined_with(&lib, &space, threads, stride).unwrap();
            assert_eq!(refined.len(), exhaustive.len());
            assert_eq!(
                refined.winners_artifact().csv(),
                exhaustive.winners_artifact().csv(),
                "stride={stride} threads={threads}: winner tables must be byte-identical"
            );
            assert_eq!(
                refined.pareto_artifact().csv(),
                exhaustive.pareto_artifact().csv(),
                "stride={stride} threads={threads}: Pareto fronts must be byte-identical"
            );
            assert_eq!(
                refined.pareto_program_artifact().csv(),
                exhaustive.pareto_program_artifact().csv(),
                "stride={stride} threads={threads}"
            );
            // Every cell accounted for: evaluated + re-derived + pruned.
            assert_eq!(
                refined.feasible_count()
                    + refined.infeasible_count()
                    + refined.incompatible_count()
                    + refined.pruned_count(),
                refined.len(),
                "stride={stride} threads={threads}"
            );
        }
    }

    #[test]
    fn refinement_is_thread_count_independent() {
        let lib = lib();
        let space = ramp_space();
        let serial = explore_portfolio_refined_with(&lib, &space, 1, 4).unwrap();
        let parallel = explore_portfolio_refined_with(&lib, &space, 4, 4).unwrap();
        // The refinement decisions (and therefore the evaluated set, the
        // grid CSV and the pruned accounting) must not depend on threads.
        assert_eq!(serial.grid_artifact().csv(), parallel.grid_artifact().csv());
        assert_eq!(serial.pruned_count(), parallel.pruned_count());
        assert_eq!(serial.core_evaluations(), parallel.core_evaluations());
    }

    #[test]
    fn tiny_area_axes_fall_back_to_exhaustion() {
        let lib = lib();
        let space = PortfolioSpace {
            areas_mm2: vec![200.0, 800.0],
            ..ramp_space()
        };
        let refined = explore_portfolio_refined(&lib, &space, 1).unwrap();
        let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
        assert_eq!(
            refined.grid_artifact().csv(),
            exhaustive.grid_artifact().csv()
        );
        assert_eq!(refined.pruned_count(), 0);
    }

    #[test]
    fn single_system_refinement_matches_explore() {
        let lib = lib();
        let space = ExploreSpace {
            nodes: vec!["14nm".to_string(), "5nm".to_string()],
            areas_mm2: (1..=12).map(|i| f64::from(i) * 80.0).collect(),
            quantities: vec![500_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flow: AssemblyFlow::ChipLast,
        };
        let exhaustive = crate::explore::explore(&lib, &space, 2).unwrap();
        let refined = explore_refined(&lib, &space, 2).unwrap();
        assert_eq!(
            refined.winners_artifact().csv(),
            exhaustive.winners_artifact().csv()
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            exhaustive.pareto_artifact().csv()
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            exhaustive.pareto_program_artifact().csv()
        );
    }

    #[test]
    fn refined_shared_matches_refined_and_reuses_warm_cores() {
        let lib = lib();
        let space = ramp_space();
        let reference = explore_portfolio_refined(&lib, &space, 2).unwrap();

        let cache = SharedCoreCache::new(4096);
        let cold = explore_portfolio_refined_shared(&lib, &space, 2, &cache, [9; 32]).unwrap();
        assert_eq!(
            cold.winners_artifact().csv(),
            reference.winners_artifact().csv()
        );
        assert_eq!(
            cold.pareto_artifact().csv(),
            reference.pareto_artifact().csv()
        );
        // The cache also dedups *within* the run: escalation/fill sub-runs
        // re-request cores a previous sub-run already priced, so the cold
        // shared pass does at most — often fewer than — the uncached
        // refined pass's evaluations.
        assert!(cold.core_evaluations() > 0);
        assert!(cold.core_evaluations() <= reference.core_evaluations());

        // Warm rerun: refinement takes the same adaptive path, and every
        // core it asks for is already resident.
        let warm = explore_portfolio_refined_shared(&lib, &space, 2, &cache, [9; 32]).unwrap();
        assert_eq!(
            warm.winners_artifact().csv(),
            reference.winners_artifact().csv()
        );
        assert_eq!(warm.core_evaluations(), 0);
    }
}
