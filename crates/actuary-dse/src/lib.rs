//! Design-space exploration on top of the *Chiplet Actuary* cost model.
//!
//! The paper's §6 frames the architecture questions this crate answers
//! mechanically:
//!
//! * *"Which integration scheme to use, how many chiplets to partition?"*
//!   — [`optimizer::recommend`] searches integration kind × chiplet count
//!   for the cheapest configuration of a single system.
//! * *"Multi-chip architecture begins to pay off when the cost of die
//!   defects exceeds the total cost resulting from packaging"* —
//!   [`crossover::find_area_crossover`] and
//!   [`crossover::find_quantity_payback`] locate the turning points in area
//!   and production quantity.
//! * *"As the yield of 7 nm technology improves … the advantage is further
//!   smaller"* — [`maturity::DefectRamp`] models defect-density learning
//!   curves and replays any study over process age.
//! * Parameter robustness — [`sensitivity::elasticity`] measures
//!   d(ln cost)/d(ln parameter) for any scalar knob.
//! * Trade-off surfaces — [`pareto::pareto_min_indices`] extracts the
//!   non-dominated frontier from any two-objective sweep.
//! * Grid-scale exploration — [`explore::explore`] evaluates the full
//!   (node × area × quantity × integration × chiplet count) Cartesian
//!   grid in parallel and post-processes it into winner tables, Pareto
//!   fronts and CSV.
//! * Adaptive exploration — [`refine::explore_portfolio_refined`] reaches
//!   the same winner tables and fronts coarse-to-fine, evaluating a
//!   stride-sampled subgrid and refining only around winner flips and
//!   front membership changes instead of exhausting the grid.
//!
//! # Layer role
//!
//! This is the *engine layer*: it sits directly on the cost model
//! (`actuary-cost`, `actuary-yield`, `actuary-tech`) and below the
//! boundary crates — `actuary-scenario` lowers parsed documents into
//! calls here, and `actuary-report` turns the typed results into bytes.
//! Everything in this crate is deterministic by contract (ordered
//! collections, no wall-clock, byte-identical results across thread
//! counts) so the layers above can diff and cache its output.
//! [`portfolio::SharedCoreCache`] is the piece built for long-running
//! callers: it memoizes quantity-independent core evaluations across
//! *separate* engine invocations, which is how the HTTP server reuses
//! work between overlapping requests.
//!
//! # Examples
//!
//! ```
//! use actuary_dse::optimizer::{recommend, SearchSpace};
//! use actuary_tech::TechLibrary;
//! use actuary_units::{Area, Quantity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let best = recommend(
//!     &lib,
//!     "5nm",
//!     Area::from_mm2(800.0)?,
//!     Quantity::new(10_000_000),
//!     &SearchSpace::default(),
//! )?;
//! assert!(best.chiplets >= 2, "an 800 mm² 5 nm system at volume wants chiplets");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crossover;
mod engine;
pub mod explore;
pub mod maturity;
pub mod optimizer;
pub mod pareto;
pub mod portfolio;
pub mod refine;
pub mod sensitivity;
pub mod sweep;

pub use actuary_arch::ArchError;

/// Convenience result alias for this crate (errors are architecture-level).
pub type Result<T> = std::result::Result<T, ArchError>;
