//! Defect-density maturity ramps (yield learning curves).
//!
//! The paper notes that its AMD validation used "relatively high defect
//! density parameters" because 7 nm had "just been massive-produced" when
//! Zen 3 started, and that "as the yield of 7 nm technology improves in
//! recent years, the advantage [of chiplets] is further smaller" (§4.1).
//! This module models that effect: an exponential learning curve
//! `D(t) = D_∞ + (D₀ − D_∞) · exp(−t/τ)` and a helper that replays any
//! study against a library snapshot at process age `t`.

use serde::{Deserialize, Serialize};

use actuary_arch::ArchError;
use actuary_tech::{ProcessNode, TechLibrary};
use actuary_yield::DefectDensity;

/// An exponential defect-density learning curve.
///
/// # Examples
///
/// ```
/// use actuary_dse::maturity::DefectRamp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Early 7 nm (0.13 /cm²) maturing to 0.07 with a 12-month constant.
/// let ramp = DefectRamp::new(0.13, 0.07, 12.0)?;
/// assert!((ramp.density_at(0.0)?.value() - 0.13).abs() < 1e-12);
/// assert!(ramp.density_at(24.0)?.value() < 0.085);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectRamp {
    initial: f64,
    mature: f64,
    time_constant: f64,
}

impl DefectRamp {
    /// Creates a ramp from `initial` to `mature` defects/cm² with time
    /// constant `time_constant` (same unit as the ages passed to
    /// [`DefectRamp::density_at`], typically months).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] if densities are negative,
    /// `mature > initial`, or the time constant is not positive.
    pub fn new(initial: f64, mature: f64, time_constant: f64) -> Result<Self, ArchError> {
        if !initial.is_finite() || initial < 0.0 || !mature.is_finite() || mature < 0.0 {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("ramp densities ({initial}, {mature}) must be non-negative"),
            });
        }
        if mature > initial {
            return Err(ArchError::InvalidArchitecture {
                reason: format!(
                    "mature density {mature} must not exceed initial density {initial}"
                ),
            });
        }
        if !time_constant.is_finite() || time_constant <= 0.0 {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("time constant {time_constant} must be positive"),
            });
        }
        Ok(DefectRamp {
            initial,
            mature,
            time_constant,
        })
    }

    /// Defect density at process age `t`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] for a negative age.
    pub fn density_at(&self, t: f64) -> Result<DefectDensity, ArchError> {
        if !t.is_finite() || t < 0.0 {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("process age {t} must be non-negative"),
            });
        }
        let d = self.mature + (self.initial - self.mature) * (-t / self.time_constant).exp();
        Ok(DefectDensity::per_cm2(d)?)
    }

    /// The initial (process-launch) density.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// The asymptotic mature density.
    pub fn mature(&self) -> f64 {
        self.mature
    }
}

/// Returns a library snapshot with `node_id`'s defect density replaced by
/// the ramp value at age `t` — everything else untouched.
///
/// # Errors
///
/// Propagates ramp and library errors.
pub fn library_at_age(
    lib: &TechLibrary,
    node_id: &str,
    ramp: &DefectRamp,
    t: f64,
) -> Result<TechLibrary, ArchError> {
    let d = ramp.density_at(t)?;
    Ok(lib.with_modified_node(node_id, |n| {
        ProcessNode::builder(n.id().clone())
            .defect_density(d.value())
            .cluster(n.cluster())
            .wafer_price(n.wafer_price())
            .wafer(n.wafer())
            .k_module(n.nre().k_module)
            .k_chip(n.nre().k_chip)
            .mask_set(n.nre().mask_set)
            .ip_license(n.nre().ip_license)
            .relative_density(n.relative_density())
            .d2d(*n.d2d())
            .build()
    })?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
    use actuary_tech::IntegrationKind;
    use actuary_units::Area;

    #[test]
    fn ramp_validates() {
        assert!(DefectRamp::new(0.13, 0.07, 12.0).is_ok());
        assert!(DefectRamp::new(-0.1, 0.07, 12.0).is_err());
        assert!(
            DefectRamp::new(0.07, 0.13, 12.0).is_err(),
            "mature above initial"
        );
        assert!(DefectRamp::new(0.13, 0.07, 0.0).is_err());
        let ramp = DefectRamp::new(0.13, 0.07, 12.0).unwrap();
        assert!(ramp.density_at(-1.0).is_err());
    }

    #[test]
    fn ramp_is_monotone_decreasing_to_mature() {
        let ramp = DefectRamp::new(0.13, 0.07, 12.0).unwrap();
        let mut last = f64::INFINITY;
        for month in 0..60 {
            let d = ramp.density_at(month as f64).unwrap().value();
            assert!(d <= last);
            assert!(d >= 0.07);
            last = d;
        }
        // Far in the future the density approaches the mature value.
        let end = ramp.density_at(600.0).unwrap().value();
        assert!((end - 0.07).abs() < 1e-6);
        assert_eq!(ramp.initial(), 0.13);
        assert_eq!(ramp.mature(), 0.07);
    }

    #[test]
    fn chiplet_advantage_shrinks_as_process_matures() {
        // The paper's §4.1 observation, reproduced mechanically: the
        // relative saving of 2 chiplets vs monolithic at 7 nm / 600 mm²
        // shrinks as D(t) falls.
        let lib = TechLibrary::paper_defaults().unwrap();
        let ramp = DefectRamp::new(0.13, 0.05, 12.0).unwrap();
        let saving_at = |t: f64| -> f64 {
            let snapshot = library_at_age(&lib, "7nm", &ramp, t).unwrap();
            let node = snapshot.node("7nm").unwrap();
            let soc = re_cost(
                &[DiePlacement::new(node, Area::from_mm2(600.0).unwrap(), 1)],
                snapshot.packaging(IntegrationKind::Soc).unwrap(),
                AssemblyFlow::ChipLast,
            )
            .unwrap()
            .total();
            let die = node
                .d2d()
                .inflate_module_area(Area::from_mm2(300.0).unwrap())
                .unwrap();
            let mcm = re_cost(
                &[DiePlacement::new(node, die, 2)],
                snapshot.packaging(IntegrationKind::Mcm).unwrap(),
                AssemblyFlow::ChipLast,
            )
            .unwrap()
            .total();
            (soc.usd() - mcm.usd()) / soc.usd()
        };
        let early = saving_at(0.0);
        let late = saving_at(36.0);
        assert!(
            late < early,
            "chiplet saving must shrink with maturity: {early:.3} → {late:.3}"
        );
        assert!(early > 0.0, "chiplets must win on an immature process");
    }
}
