//! Chunked parallel work distribution shared by the exploration engines.
//!
//! Workers pull *ranges* of the pre-expanded work list from one atomic
//! index instead of single items: with sub-microsecond cells on many-core
//! machines, a per-cell `fetch_add` becomes the contended hot spot, while a
//! chunk of [`chunk_for`] cells amortizes the atomic to noise (the
//! ROADMAP's "chunked work distribution" item). Results are reassembled in
//! work-list order, so the output is independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many work items one atomic fetch claims, scaled to the work list:
/// small lists keep the historical 32 (a grid of a few hundred cells still
/// load-balances across threads), while huge refine-mode lists take bites
/// of up to 8,192 so the per-chunk bookkeeping stays off the profile.
/// Targets ~16 chunks per worker, enough slack for uneven cell costs.
pub(crate) fn chunk_for(items: usize, threads: usize) -> usize {
    (items / (threads.max(1) * 16)).clamp(32, 8192)
}

/// Resolves a requested worker count (`0` = the machine's available
/// parallelism) against the size of the work list.
pub(crate) fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.min(work_items).max(1)
}

/// Evaluates `eval(index, item)` for every item on `threads` scoped worker
/// threads pulling [`chunk_for`]-sized ranges from an atomic index; returns
/// the results in item order regardless of which worker ran what.
pub(crate) fn run_chunked<T, R, F>(items: &[T], threads: usize, eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len()).max(1);
    let chunk = chunk_for(items.len(), threads);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, eval(i, item)));
                    }
                }
                collected
                    .lock()
                    .expect("a worker panicked while holding the result lock")
                    .extend(local);
            });
        }
    });
    let mut out = collected
        .into_inner()
        .expect("a worker panicked while holding the result lock");
    out.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), items.len());
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 7] {
            let out = run_chunked(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_work_lists() {
        let none: Vec<u32> = vec![];
        assert!(run_chunked(&none, 4, |_, &x| x).is_empty());
        // Fewer items than one chunk, more threads than items.
        let few = vec![10u32, 20, 30];
        assert_eq!(run_chunked(&few, 64, |_, &x| x + 1), vec![11, 21, 31]);
    }

    #[test]
    fn chunk_size_scales_with_the_work_list() {
        // Small grids keep the historical fine-grained chunk.
        assert_eq!(chunk_for(1_620, 8), 32);
        assert_eq!(chunk_for(100, 1), 32);
        // Large grids take proportionally bigger bites...
        assert_eq!(chunk_for(1_000_000, 8), 7_812);
        // ...up to a balance-preserving ceiling.
        assert_eq!(chunk_for(100_000_000, 4), 8_192);
        assert_eq!(chunk_for(0, 0), 32);
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(64, 3), 3);
        assert_eq!(resolve_threads(4, 0), 1);
        assert!(resolve_threads(0, 100) >= 1);
    }
}
