//! Work-stealing parallel work distribution shared by the exploration
//! engines.
//!
//! Workers own *deques of chunk ranges* over the pre-expanded work list
//! instead of racing one atomic index: the list is pre-split into
//! [`chunk_for`]-sized ranges dealt contiguously across workers, each
//! worker drains its own queue front-to-back, and a worker that runs dry
//! steals the back half of a victim's queue. Uniform workloads never
//! steal (the deal is already balanced and contention-free); skewed
//! workloads — refine's escalation phase can concentrate every expensive
//! cell in one stretch of the list — rebalance instead of serializing on
//! the tail. Results are reassembled in work-list order, so the output
//! stays independent of both the thread count and the steal schedule.
//!
//! Steal events are counted into the global
//! `actuary_engine_steals_total` counter (see `docs/observability.md`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How many work items one queued range covers, scaled to the work list:
/// small lists keep a fine 16-item grain (a grid of a few hundred cells
/// still load-balances across threads), while huge refine-mode lists take
/// ranges of up to 2,048 items so per-range bookkeeping stays off the
/// profile. Targets ~64 ranges per worker — finer than the pre-stealing
/// ~16, because a range is the unit of theft: one oversized range pinning
/// every expensive cell to a single worker is exactly the skew stealing
/// exists to fix.
pub(crate) fn chunk_for(items: usize, threads: usize) -> usize {
    (items / (threads.max(1) * 64)).clamp(16, 2048)
}

/// Resolves a requested worker count (`0` = the machine's available
/// parallelism) against the size of the work list.
pub(crate) fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.min(work_items).max(1)
}

/// A worker's queue of `(start, end)` item ranges, lowest indices at the
/// front. Owners pop the front (preserving cache-friendly ascending
/// order); thieves take from the back, furthest from where the owner is
/// working.
type RangeQueue = Mutex<VecDeque<(usize, usize)>>;

fn lock_queue(queue: &RangeQueue) -> MutexGuard<'_, VecDeque<(usize, usize)>> {
    queue
        .lock()
        .expect("a worker panicked while holding a range queue")
}

/// Evaluates `eval(index, item)` for every item on `threads` scoped worker
/// threads under the work-stealing scheduler; returns the results in item
/// order regardless of which worker ran what.
pub(crate) fn run_chunked<T, R, F>(items: &[T], threads: usize, eval: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        // No scheduler to pay for: one worker, ascending order.
        return items.iter().enumerate().map(|(i, x)| eval(i, x)).collect();
    }
    let chunk = chunk_for(items.len(), threads);
    let ranges: Vec<(usize, usize)> = (0..items.len())
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(items.len())))
        .collect();
    // Deal contiguous runs of ranges so neighbours stay on one worker and
    // an even workload finishes with zero steals.
    let per_worker = ranges.len().div_ceil(threads);
    let queues: Vec<RangeQueue> = ranges
        .chunks(per_worker)
        .map(|run| Mutex::new(run.iter().copied().collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for w in 0..queues.len() {
            let (queues, steals, collected, eval) = (&queues, &steals, &collected, &eval);
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut local_steals = 0u64;
                'work: loop {
                    if let Some((start, end)) = lock_queue(&queues[w]).pop_front() {
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, eval(i, item)));
                        }
                        continue;
                    }
                    // Own queue dry: scan the other workers and steal the
                    // back half of the first non-empty queue found.
                    for off in 1..queues.len() {
                        let victim = (w + off) % queues.len();
                        let stolen: Vec<(usize, usize)> = {
                            let mut queue = lock_queue(&queues[victim]);
                            let len = queue.len();
                            if len == 0 {
                                continue;
                            }
                            queue.drain(len - len.div_ceil(2)..).collect()
                        };
                        local_steals += 1;
                        lock_queue(&queues[w]).extend(stolen);
                        continue 'work;
                    }
                    // Every queue momentarily empty: any range not yet in a
                    // queue is already claimed by the worker processing it,
                    // so there is nothing left to take.
                    break;
                }
                if local_steals > 0 {
                    steals.fetch_add(local_steals, Ordering::Relaxed);
                }
                collected
                    .lock()
                    .expect("a worker panicked while holding the result lock")
                    .extend(local);
            });
        }
    });
    // Registered even when zero so a uniform workload reads 0 on
    // /metricsz rather than omitting the family.
    let stolen = steals.into_inner();
    actuary_obs::Registry::global()
        .counter(
            "actuary_engine_steals_total",
            "Work-stealing events in the chunked evaluation engine \
             (one per successful theft of queued chunk ranges).",
            &[],
        )
        .add(stolen);
    let mut out = collected
        .into_inner()
        .expect("a worker panicked while holding the result lock");
    out.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), items.len());
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 7] {
            let out = run_chunked(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_work_lists() {
        let none: Vec<u32> = vec![];
        assert!(run_chunked(&none, 4, |_, &x| x).is_empty());
        // Fewer items than one chunk, more threads than items.
        let few = vec![10u32, 20, 30];
        assert_eq!(run_chunked(&few, 64, |_, &x| x + 1), vec![11, 21, 31]);
    }

    #[test]
    fn chunk_size_scales_with_the_work_list() {
        // Small grids keep a fine steal-friendly grain.
        assert_eq!(chunk_for(1_620, 8), 16);
        assert_eq!(chunk_for(100, 1), 16);
        // Large grids take proportionally bigger bites...
        assert_eq!(chunk_for(1_000_000, 8), 1_953);
        // ...up to a theft-preserving ceiling.
        assert_eq!(chunk_for(100_000_000, 4), 2_048);
        assert_eq!(chunk_for(0, 0), 16);
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(64, 3), 3);
        assert_eq!(resolve_threads(4, 0), 1);
        assert!(resolve_threads(0, 100) >= 1);
    }

    /// Deterministic busy work proportional to `units`, opaque enough that
    /// the optimizer cannot elide it.
    fn busy(units: u64) -> u64 {
        let mut acc = 0x9e37_79b9_7f4a_7c15_u64;
        for i in 0..units * 500 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        acc
    }

    /// The regression test behind the work-stealing swap: a pathologically
    /// skewed cost distribution — 5% of items carry ~95% of the work —
    /// must cost about the same wall-clock whether the expensive items are
    /// clustered at the tail of the list (where the old single-atomic
    /// claim left them all to whichever workers claimed last) or spread
    /// uniformly. The tolerance is generous: the point is "no tail
    /// serialization", not a micro-benchmark.
    #[test]
    fn skewed_cost_distributions_keep_wall_clock_parity_across_orderings() {
        let n = 4096usize;
        let clustered: Vec<u64> = (0..n)
            .map(|i| if i >= n - n / 20 { 120 } else { 1 })
            .collect();
        let spread: Vec<u64> = (0..n).map(|i| if i % 20 == 0 { 120 } else { 1 }).collect();
        let time = |items: &[u64]| {
            let sw = actuary_obs::clock::Stopwatch::start();
            let out = run_chunked(items, 4, |_, &units| busy(units));
            assert_eq!(out.len(), items.len());
            sw.elapsed_seconds()
        };
        // Warm-up evens out thread-pool and frequency-scaling cold starts.
        time(&spread);
        let spread_secs = time(&spread);
        let clustered_secs = time(&clustered);
        assert!(
            clustered_secs <= spread_secs * 4.0 + 0.05,
            "clustered tail serialized: {clustered_secs:.3}s vs {spread_secs:.3}s spread"
        );
        // Both orderings evaluate the same multiset of items and must keep
        // exact output order.
        assert_eq!(
            run_chunked(&clustered, 4, |i, _| i),
            (0..n).collect::<Vec<_>>()
        );
    }
}
