//! Turning-point finders: the area where multi-chip starts to win and the
//! production quantity where chiplet NRE pays back.

use actuary_arch::ArchError;
use actuary_units::{Area, Quantity};

/// Locates a sign change of `f` on `[lo, hi]` (mm²) by bisection and
/// returns the crossover area. `f` is typically
/// `cost_multichip(area) − cost_soc(area)`, so the returned area is where
/// multi-chip integration begins to pay off (the paper's "turning point",
/// §4.1).
///
/// Returns `None` when `f` has the same sign at both ends (no crossover in
/// range).
///
/// # Errors
///
/// Propagates errors from `f`; rejects an empty or inverted range.
///
/// # Examples
///
/// ```
/// use actuary_dse::crossover::find_area_crossover;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // f crosses zero at 400 mm².
/// let root = find_area_crossover(|a| Ok(a.mm2() - 400.0), 100.0, 900.0, 0.01)?;
/// assert!((root.unwrap().mm2() - 400.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn find_area_crossover<F>(
    mut f: F,
    lo_mm2: f64,
    hi_mm2: f64,
    tol_mm2: f64,
) -> Result<Option<Area>, ArchError>
where
    F: FnMut(Area) -> Result<f64, ArchError>,
{
    if lo_mm2 >= hi_mm2 || lo_mm2 < 0.0 {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("invalid crossover range [{lo_mm2}, {hi_mm2}]"),
        });
    }
    let mut lo = lo_mm2;
    let mut hi = hi_mm2;
    let mut f_lo = f(Area::from_mm2(lo)?)?;
    let f_hi = f(Area::from_mm2(hi)?)?;
    // lint:allow(determinism): exact root at a bracket endpoint ends the bisection early
    if f_lo == 0.0 {
        return Ok(Some(Area::from_mm2(lo)?));
    }
    // lint:allow(determinism): exact root at a bracket endpoint ends the bisection early
    if f_hi == 0.0 {
        return Ok(Some(Area::from_mm2(hi)?));
    }
    if f_lo.signum() == f_hi.signum() {
        return Ok(None);
    }
    while hi - lo > tol_mm2 {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(Area::from_mm2(mid)?)?;
        // lint:allow(determinism): exact root at the midpoint ends the bisection early
        if f_mid == 0.0 {
            return Ok(Some(Area::from_mm2(mid)?));
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(Area::from_mm2(0.5 * (lo + hi))?))
}

/// Finds the smallest production quantity in `[lo, hi]` at which `f`
/// becomes non-positive, assuming `f` is non-increasing in quantity.
/// `f` is typically `total_multichip(q) − total_soc(q)`: amortization only
/// helps the multi-chip side, so the first non-positive quantity is the
/// payback point of §4.2 ("for 5 nm systems, when the quantity reaches two
/// million, multi-chip architecture starts to pay back").
///
/// Returns `None` if `f` is still positive at `hi`.
///
/// # Errors
///
/// Propagates errors from `f`; rejects an empty or inverted range.
pub fn find_quantity_payback<F>(
    mut f: F,
    lo: Quantity,
    hi: Quantity,
) -> Result<Option<Quantity>, ArchError>
where
    F: FnMut(Quantity) -> Result<f64, ArchError>,
{
    if lo.count() == 0 || lo >= hi {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("invalid payback range [{lo}, {hi}]"),
        });
    }
    if f(lo)? <= 0.0 {
        return Ok(Some(lo));
    }
    if f(hi)? > 0.0 {
        return Ok(None);
    }
    let mut lo_q = lo.count();
    let mut hi_q = hi.count();
    while hi_q - lo_q > 1 {
        let mid = lo_q + (hi_q - lo_q) / 2;
        if f(Quantity::new(mid))? <= 0.0 {
            hi_q = mid;
        } else {
            lo_q = mid;
        }
    }
    Ok(Some(Quantity::new(hi_q)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_crossover_finds_root() {
        let root = find_area_crossover(|a| Ok((a.mm2() - 123.456).powi(3)), 50.0, 900.0, 1e-4)
            .unwrap()
            .unwrap();
        assert!((root.mm2() - 123.456).abs() < 1e-3);
    }

    #[test]
    fn area_crossover_none_when_no_sign_change() {
        let none = find_area_crossover(|a| Ok(a.mm2() + 1.0), 50.0, 900.0, 0.1).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn area_crossover_endpoint_roots() {
        let at_lo = find_area_crossover(|a| Ok(a.mm2() - 50.0), 50.0, 900.0, 0.1)
            .unwrap()
            .unwrap();
        assert_eq!(at_lo.mm2(), 50.0);
    }

    #[test]
    fn area_crossover_validates_range() {
        assert!(find_area_crossover(|_| Ok(0.0), 900.0, 50.0, 0.1).is_err());
        assert!(find_area_crossover(|_| Ok(0.0), -10.0, 50.0, 0.1).is_err());
    }

    #[test]
    fn quantity_payback_finds_threshold() {
        // f(q) = 1e6/q − 1: crosses zero at exactly 1,000,000.
        let q = find_quantity_payback(
            |q| Ok(1.0e6 / q.count() as f64 - 1.0),
            Quantity::new(1_000),
            Quantity::new(100_000_000),
        )
        .unwrap()
        .unwrap();
        assert_eq!(q.count(), 1_000_000);
    }

    #[test]
    fn quantity_payback_none_when_never() {
        let none =
            find_quantity_payback(|_| Ok(1.0), Quantity::new(1_000), Quantity::new(1_000_000))
                .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn quantity_payback_immediate() {
        let q = find_quantity_payback(|_| Ok(-1.0), Quantity::new(1_000), Quantity::new(1_000_000))
            .unwrap()
            .unwrap();
        assert_eq!(q.count(), 1_000);
    }

    #[test]
    fn quantity_payback_validates_range() {
        assert!(find_quantity_payback(|_| Ok(0.0), Quantity::new(0), Quantity::new(10)).is_err());
        assert!(find_quantity_payback(|_| Ok(0.0), Quantity::new(10), Quantity::new(10)).is_err());
    }
}
