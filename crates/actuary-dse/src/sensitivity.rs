//! Parameter sensitivity: elasticities of cost with respect to model knobs.
//!
//! The paper stresses that "applying the model to other cases makes it
//! necessary to include the latest relevant data" (§4); elasticities tell
//! the user *which* data matter. An elasticity of `ε` means a 1 % increase
//! in the parameter moves the cost by about `ε` %.

use actuary_arch::ArchError;

/// Estimates the elasticity `d(ln cost) / d(ln param)` of `cost_at` around
/// `base_value` by central finite differences with relative step `rel_step`
/// (e.g. `0.01` for ±1 %).
///
/// # Errors
///
/// Propagates errors from `cost_at`; rejects non-positive base values,
/// non-positive steps, and non-positive costs (logarithms must exist).
///
/// # Examples
///
/// ```
/// use actuary_dse::sensitivity::elasticity;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // cost = param²  →  elasticity 2.
/// let e = elasticity(3.0, 0.01, |p| Ok(p * p))?;
/// assert!((e - 2.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn elasticity<F>(base_value: f64, rel_step: f64, mut cost_at: F) -> Result<f64, ArchError>
where
    F: FnMut(f64) -> Result<f64, ArchError>,
{
    if !base_value.is_finite() || base_value <= 0.0 {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("elasticity base value {base_value} must be positive"),
        });
    }
    if !rel_step.is_finite() || rel_step <= 0.0 || rel_step >= 1.0 {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("elasticity step {rel_step} must be in (0, 1)"),
        });
    }
    let up = cost_at(base_value * (1.0 + rel_step))?;
    let down = cost_at(base_value * (1.0 - rel_step))?;
    if up <= 0.0 || down <= 0.0 {
        return Err(ArchError::InvalidArchitecture {
            reason: "elasticity requires positive costs".to_string(),
        });
    }
    let dln_cost = up.ln() - down.ln();
    let dln_param = (1.0 + rel_step).ln() - (1.0 - rel_step).ln();
    Ok(dln_cost / dln_param)
}

/// A labelled elasticity, for sensitivity tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name (e.g. `"defect density 5nm"`).
    pub parameter: String,
    /// Base value of the parameter, in whatever unit the parameter itself
    /// carries (USD for wafer prices, /cm² for defect densities, …).
    // lint:allow(unit-suffix): the unit varies with the swept parameter
    pub base_value: f64,
    /// Estimated elasticity at the base value.
    // lint:allow(unit-suffix): elasticities are dimensionless log-log slopes
    pub elasticity: f64,
}

/// Ranks a set of labelled cost functions by the magnitude of their
/// elasticity (largest first).
///
/// # Errors
///
/// Propagates [`elasticity`] errors.
pub fn rank_sensitivities<F>(
    params: Vec<(String, f64)>,
    rel_step: f64,
    mut cost_at: F,
) -> Result<Vec<Sensitivity>, ArchError>
where
    F: FnMut(&str, f64) -> Result<f64, ArchError>,
{
    let mut out = Vec::with_capacity(params.len());
    for (name, base) in params {
        let e = elasticity(base, rel_step, |v| cost_at(&name, v))?;
        out.push(Sensitivity {
            parameter: name,
            base_value: base,
            elasticity: e,
        });
    }
    out.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("elasticities are finite")
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
    use actuary_tech::{IntegrationKind, ProcessNode, TechLibrary};
    use actuary_units::Area;

    #[test]
    fn power_law_elasticities() {
        for k in [0.5, 1.0, 2.0, 3.0] {
            let e = elasticity(2.0, 0.005, |p| Ok(p.powf(k))).unwrap();
            assert!((e - k).abs() < 1e-3, "k={k}: got {e}");
        }
    }

    #[test]
    fn constant_cost_has_zero_elasticity() {
        let e = elasticity(5.0, 0.01, |_| Ok(42.0)).unwrap();
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(elasticity(0.0, 0.01, Ok).is_err());
        assert!(elasticity(1.0, 0.0, Ok).is_err());
        assert!(elasticity(1.0, 1.5, Ok).is_err());
        assert!(elasticity(1.0, 0.01, |_| Ok(-1.0)).is_err());
    }

    /// Changing the defect density must matter more for a large 5 nm die
    /// than a small one — the core intuition of the whole paper.
    #[test]
    fn defect_density_elasticity_grows_with_area() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let cost_at = |area_mm2: f64, d: f64| -> Result<f64, ArchError> {
            let modified = lib.with_modified_node("5nm", |n| {
                ProcessNode::builder(n.id().clone())
                    .defect_density(d)
                    .cluster(n.cluster())
                    .wafer_price(n.wafer_price())
                    .k_module(n.nre().k_module)
                    .k_chip(n.nre().k_chip)
                    .mask_set(n.nre().mask_set)
                    .ip_license(n.nre().ip_license)
                    .relative_density(n.relative_density())
                    .d2d(*n.d2d())
                    .build()
            })?;
            let node = modified.node("5nm")?;
            let b = re_cost(
                &[DiePlacement::new(node, Area::from_mm2(area_mm2)?, 1)],
                modified.packaging(IntegrationKind::Soc)?,
                AssemblyFlow::ChipLast,
            )?;
            Ok(b.total().usd())
        };
        let small = elasticity(0.11, 0.01, |d| cost_at(100.0, d)).unwrap();
        let large = elasticity(0.11, 0.01, |d| cost_at(800.0, d)).unwrap();
        assert!(
            large > 2.0 * small,
            "defect sensitivity must grow with area: {small} vs {large}"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn ranking_orders_by_magnitude() {
        let ranked = rank_sensitivities(
            vec![("linear".to_string(), 2.0), ("cubic".to_string(), 2.0)],
            0.005,
            |name, v| Ok(if name == "cubic" { v.powi(3) } else { v }),
        )
        .unwrap();
        assert_eq!(ranked[0].parameter, "cubic");
        assert!((ranked[0].elasticity - 3.0).abs() < 1e-3);
        assert!((ranked[1].elasticity - 1.0).abs() < 1e-3);
    }
}
