//! Pareto-frontier extraction for two-objective sweeps (e.g. per-unit cost
//! vs chiplet count, or RE vs NRE).

/// Returns the indices of the non-dominated points when *minimizing both*
/// objectives, sorted by the first objective ascending.
///
/// A point dominates another if it is no worse in both objectives and
/// strictly better in at least one. Duplicated points are kept once.
///
/// # Examples
///
/// ```
/// use actuary_dse::pareto::pareto_min_indices;
///
/// let points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
/// let frontier = pareto_min_indices(&points);
/// assert_eq!(frontier, vec![0, 1, 3]); // (3,4) is dominated by (2,3)
/// ```
pub fn pareto_min_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by first objective ascending, tie-break second ascending.
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("objectives must be finite")
            .then(
                points[a]
                    .1
                    .partial_cmp(&points[b].1)
                    .expect("objectives must be finite"),
            )
    });
    let mut frontier = Vec::new();
    let mut best_second = f64::INFINITY;
    let mut last_point: Option<(f64, f64)> = None;
    for idx in order {
        let p = points[idx];
        if Some(p) == last_point {
            continue; // exact duplicate
        }
        if p.1 < best_second {
            frontier.push(idx);
            best_second = p.1;
            last_point = Some(p);
        }
    }
    frontier
}

/// Convenience wrapper returning the non-dominated points themselves.
pub fn pareto_min(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    pareto_min_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_frontier() {
        let points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
        assert_eq!(pareto_min_indices(&points), vec![0, 1, 3]);
        assert_eq!(
            pareto_min(&points),
            vec![(1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]
        );
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_min_indices(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn empty() {
        assert!(pareto_min_indices(&[]).is_empty());
    }

    #[test]
    fn dominated_duplicates_collapse() {
        let points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        assert_eq!(pareto_min_indices(&points), vec![0]);
    }

    #[test]
    fn ties_on_first_objective() {
        // Same cost, different second objective: only the better survives.
        let points = [(1.0, 5.0), (1.0, 3.0)];
        assert_eq!(pareto_min_indices(&points), vec![1]);
    }

    proptest! {
        #[test]
        fn frontier_points_are_mutually_non_dominated(
            xs in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..50),
        ) {
            let frontier = pareto_min_indices(&xs);
            prop_assert!(!frontier.is_empty());
            for (i, &a) in frontier.iter().enumerate() {
                for &b in frontier.iter().skip(i + 1) {
                    let (pa, pb) = (xs[a], xs[b]);
                    let a_dominates = pa.0 <= pb.0 && pa.1 <= pb.1 && (pa.0 < pb.0 || pa.1 < pb.1);
                    let b_dominates = pb.0 <= pa.0 && pb.1 <= pa.1 && (pb.0 < pa.0 || pb.1 < pa.1);
                    prop_assert!(!a_dominates && !b_dominates);
                }
            }
        }

        #[test]
        fn every_point_dominated_by_some_frontier_point(
            xs in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..50),
        ) {
            let frontier = pareto_min_indices(&xs);
            for (i, p) in xs.iter().enumerate() {
                if frontier.contains(&i) { continue; }
                let covered = frontier.iter().any(|&f| {
                    xs[f].0 <= p.0 && xs[f].1 <= p.1
                });
                prop_assert!(covered, "point {i} not covered by the frontier");
            }
        }
    }
}
