//! Multi-axis architecture exploration: the full Cartesian grid the
//! paper's §6 walks by hand, evaluated in parallel.
//!
//! [`crate::optimizer::recommend`] answers the §6 question for *one*
//! (node, area, quantity) operating point; this module scales the same
//! [`crate::optimizer::evaluate_candidate`] core to the whole grid of
//! operating points × (integration, chiplet count) configurations, the way
//! cost-aware exploration tools (Tang & Xie, arXiv:2206.07308; CATCH,
//! arXiv:2503.15753) derive crossovers and Pareto fronts.
//!
//! Four properties distinguish the engine from a nest of loops:
//!
//! * **Parallel** — candidates are pre-expanded into a flat work list and
//!   pulled in chunks by `std::thread::scope` workers over an atomic
//!   index (the shared chunked engine); the [`actuary_tech::TechLibrary`] is
//!   shared by reference, no dependencies are added.
//! * **Cached** — the expensive RE/NRE core of a cell depends only on
//!   (node, area, integration, chiplet count, flow), so one core is
//!   evaluated per distinct geometry and re-amortized per quantity: ~3×
//!   fewer full evaluations on the default grid, byte-identical output
//!   (see [`ExploreResult::core_evaluations`] and
//!   [`crate::portfolio::CorePolicy`]).
//! * **Deterministic** — results come back in grid order (node → area →
//!   quantity → integration → chiplet count) regardless of thread count,
//!   so one-threaded and N-threaded runs emit byte-identical CSV.
//! * **Loss-free** — infeasible cells (die exceeds the wafer, interposer
//!   unmanufacturable) and incompatible cells (monolithic SoC × several
//!   chiplets) are *recorded* with their reason, not silently dropped.
//!   Incompatible reasons are interned as a copyable
//!   [`IncompatibleReason`] and re-derived from a cell's coordinates on
//!   read, so mostly-incompatible grids never materialize a string (or an
//!   outcome at all) per dead cell.
//!
//! This engine grids *single systems*; [`crate::portfolio`] crosses the
//! same axes with the paper's reuse schemes and the assembly-flow axis
//! (both engines share one implementation — `explore` is the
//! single-scheme, single-flow special case). [`crate::refine`] runs either
//! grid coarse-to-fine instead of exhaustively.
//!
//! # Examples
//!
//! ```
//! use actuary_dse::explore::{explore, ExploreSpace};
//! use actuary_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let space = ExploreSpace {
//!     nodes: vec!["7nm".to_string()],
//!     areas_mm2: vec![400.0, 800.0],
//!     quantities: vec![2_000_000],
//!     ..ExploreSpace::default()
//! };
//! let result = explore(&lib, &space, 2)?;
//! assert_eq!(result.len(), 2 * 4 * 5); // areas × integrations × counts
//! assert!(result.feasible_count() > 0);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_arch::ArchError;
use actuary_model::AssemblyFlow;
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::{Area, Artifact};

use crate::optimizer::Candidate;
use crate::portfolio::{
    explore_portfolio_with, CorePolicy, PortfolioCell, PortfolioResult, PortfolioSpace, ReuseScheme,
};

/// The exploration grid: the Cartesian product of every axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreSpace {
    /// Process-node identifiers to explore (must exist in the library).
    pub nodes: Vec<String>,
    /// Total module areas in mm² (pre-D2D-inflation, as in the optimizer).
    pub areas_mm2: Vec<f64>,
    /// Production quantities.
    pub quantities: Vec<u64>,
    /// Integration schemes (the monolithic SoC is a regular grid member
    /// here, compatible only with a chiplet count of 1).
    pub integrations: Vec<IntegrationKind>,
    /// Chiplet counts (1 = monolithic for SoC, single-die package for
    /// multi-chip schemes).
    pub chiplet_counts: Vec<u32>,
    /// Assembly flow applied to every cell.
    pub flow: AssemblyFlow,
}

impl Default for ExploreSpace {
    /// The §6 replication grid: the paper's three headline nodes, the
    /// Figure 4 area range, the Figure 6 quantities, all four integration
    /// schemes and 1–5 chiplets — 1,620 cells.
    fn default() -> Self {
        ExploreSpace {
            nodes: vec!["14nm".to_string(), "7nm".to_string(), "5nm".to_string()],
            areas_mm2: (1..=9).map(|i| i as f64 * 100.0).collect(),
            quantities: vec![500_000, 2_000_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flow: AssemblyFlow::ChipLast,
        }
    }
}

impl ExploreSpace {
    /// The number of grid cells (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.nodes.len()
            * self.areas_mm2.len()
            * self.quantities.len()
            * self.integrations.len()
            * self.chiplet_counts.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates every axis independently, so a single empty axis cannot
    /// silently collapse the grid (the same class of bug as the old
    /// optimizer guard).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] naming the offending
    /// axis, or [`ArchError::Unit`] for a non-finite area.
    pub fn validate(&self) -> Result<(), ArchError> {
        let axis_err = |axis: &str| ArchError::InvalidArchitecture {
            reason: format!("exploration space has no {axis}"),
        };
        if self.nodes.is_empty() {
            return Err(axis_err("nodes"));
        }
        if self.areas_mm2.is_empty() {
            return Err(axis_err("areas"));
        }
        if self.quantities.is_empty() {
            return Err(axis_err("quantities"));
        }
        if self.integrations.is_empty() {
            return Err(axis_err("integration kinds"));
        }
        if self.chiplet_counts.is_empty() {
            return Err(axis_err("chiplet counts"));
        }
        for &mm2 in &self.areas_mm2 {
            Area::from_mm2(mm2)?;
        }
        if let Some(&n) = self.chiplet_counts.iter().find(|&&n| n == 0) {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("chiplet count must be at least 1, got {n}"),
            });
        }
        Ok(())
    }
}

/// The SCMS multiplicity list of an [`IncompatibleReason::ScmsNonMember`],
/// interned into a fixed-size copyable value (the reason enum must stay
/// `Copy`, so it cannot carry the space's `Vec<u32>`).
///
/// [`fmt::Display`] reproduces the `Vec` debug formatting the reason
/// strings have always used (`[1, 2, 4]`); families beyond
/// [`ScmsFamily::MAX`] multiplicities — far past the paper's `{1, 2, 4}` —
/// render the kept prefix followed by `...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScmsFamily {
    multiplicities: [u32; Self::MAX],
    len: u8,
    truncated: bool,
}

impl ScmsFamily {
    /// How many multiplicities the interned family keeps.
    pub const MAX: usize = 8;

    /// Interns `multiplicities`, keeping the first [`ScmsFamily::MAX`].
    pub fn new(multiplicities: &[u32]) -> Self {
        let mut kept = [0u32; Self::MAX];
        let len = multiplicities.len().min(Self::MAX);
        kept[..len].copy_from_slice(&multiplicities[..len]);
        ScmsFamily {
            multiplicities: kept,
            len: len as u8,
            truncated: multiplicities.len() > Self::MAX,
        }
    }
}

impl fmt::Display for ScmsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, m) in self.multiplicities[..usize::from(self.len)]
            .iter()
            .enumerate()
        {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{m}")?;
        }
        if self.truncated {
            f.write_str(", ...")?;
        }
        f.write_str("]")
    }
}

/// Why a cell's axes contradict each other, interned as a copyable value.
///
/// The grid used to carry a pre-formatted `String` per incompatible cell —
/// one heap allocation each on grids that are *mostly* incompatible (family
/// schemes × a wide chiplet-count axis). The enum is `Copy`, is re-derived
/// from a cell's coordinates instead of being stored at all, and its
/// [`fmt::Display`] reproduces the historical CSV text byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncompatibleReason {
    /// A monolithic (non-multi-chip) integration × more than one chiplet.
    MonolithicMultiChip {
        /// The monolithic integration kind.
        integration: IntegrationKind,
        /// The contradicting chiplet count.
        chiplets: u32,
    },
    /// A multi-chip integration × fewer than two chiplets.
    SingleDieMultiChip {
        /// The multi-chip integration kind.
        integration: IntegrationKind,
    },
    /// The chiplet count is not one of the SCMS family's multiplicities.
    ScmsNonMember {
        /// The family's multiplicity list.
        family: ScmsFamily,
        /// The non-member chiplet count.
        chiplets: u32,
    },
    /// The chiplet count is not an OCME family member size.
    OcmeNonMember {
        /// The non-member chip count.
        chiplets: u32,
    },
    /// More chiplets than the FSMC package has sockets.
    FsmcOverflow {
        /// The package's socket count.
        sockets: u32,
        /// The overflowing collocation size.
        chiplets: u32,
    },
}

impl fmt::Display for IncompatibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncompatibleReason::MonolithicMultiChip {
                integration,
                chiplets,
            } => write!(
                f,
                "monolithic {integration} cannot hold {chiplets} chiplets"
            ),
            IncompatibleReason::SingleDieMultiChip { integration } => write!(
                f,
                "{integration} needs at least 2 chiplets (a single die has no D2D interface)"
            ),
            IncompatibleReason::ScmsNonMember { family, chiplets } => {
                write!(f, "SCMS family {family} has no {chiplets}-chiplet member")
            }
            IncompatibleReason::OcmeNonMember { chiplets } => write!(
                f,
                "OCME family (C, C+1X, C+1X+1Y, C+2X+2Y) has no {chiplets}-chip member"
            ),
            IncompatibleReason::FsmcOverflow { sockets, chiplets } => write!(
                f,
                "FSMC package has {sockets} sockets, cannot collocate {chiplets} chiplets"
            ),
        }
    }
}

/// What happened when one grid cell was evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The configuration was costed successfully.
    Feasible(Candidate),
    /// The configuration cannot be manufactured (die exceeds the wafer,
    /// interposer too large, zero yield); the engine's reason is kept.
    Infeasible(String),
    /// The axes combined into a contradiction (monolithic SoC × more than
    /// one chiplet); recorded so grid accounting stays exhaustive.
    Incompatible(IncompatibleReason),
    /// The cell was skipped by coarse-to-fine refinement (see
    /// [`crate::refine`]): compatible axes, but the refinement proof never
    /// needed its evaluation. Exhaustive runs produce none.
    Pruned,
}

impl CellOutcome {
    /// The costed candidate, if the cell was feasible.
    pub fn candidate(&self) -> Option<&Candidate> {
        match self {
            CellOutcome::Feasible(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the cell was costed successfully.
    pub fn is_feasible(&self) -> bool {
        matches!(self, CellOutcome::Feasible(_))
    }

    /// The CSV status keyword for this outcome.
    pub(crate) fn status(&self) -> &'static str {
        match self {
            CellOutcome::Feasible(_) => "feasible",
            CellOutcome::Infeasible(_) => "infeasible",
            CellOutcome::Incompatible(_) => "incompatible",
            CellOutcome::Pruned => "pruned",
        }
    }

    /// The recorded reason for a cell that was not costed.
    pub(crate) fn detail(&self) -> String {
        match self {
            CellOutcome::Feasible(_) => String::new(),
            CellOutcome::Infeasible(reason) => reason.clone(),
            CellOutcome::Incompatible(reason) => reason.to_string(),
            CellOutcome::Pruned => {
                "not evaluated (pruned by coarse-to-fine refinement)".to_string()
            }
        }
    }
}

/// One evaluated grid cell: its coordinates plus the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreCell {
    /// Process-node identifier.
    pub node: String,
    /// Total module area in mm².
    pub area_mm2: f64,
    /// Production quantity.
    pub quantity: u64,
    /// Integration scheme.
    pub integration: IntegrationKind,
    /// Chiplet count.
    pub chiplets: u32,
    /// What evaluation produced.
    pub outcome: CellOutcome,
}

impl ExploreCell {
    /// Drops the portfolio-only coordinates (flow, scheme) of a lifted
    /// single-system cell.
    fn from_portfolio(cell: PortfolioCell) -> Self {
        ExploreCell {
            node: cell.node,
            area_mm2: cell.area_mm2,
            quantity: cell.quantity,
            integration: cell.integration,
            chiplets: cell.chiplets,
            outcome: cell.outcome,
        }
    }
}

/// The cheapest feasible configuration of one (node, area, quantity)
/// operating point — one row of the §6 takeaway table.
#[derive(Debug, Clone, PartialEq)]
pub struct GridWinner {
    /// Process-node identifier.
    pub node: String,
    /// Total module area in mm².
    pub area_mm2: f64,
    /// Production quantity.
    pub quantity: u64,
    /// The cheapest feasible candidate, or `None` if every configuration
    /// of this operating point was infeasible.
    pub best: Option<Candidate>,
    /// Relative saving of the winner vs the monolithic SoC baseline
    /// (`0.25` = 25 % cheaper); `None` when the SoC cell itself was
    /// infeasible or absent from the grid.
    pub saving_vs_soc_frac: Option<f64>,
}

impl GridWinner {
    /// The saving vs the SoC baseline rendered as a signed percentage of
    /// cost change (`"-13.6%"` = 13.6 % cheaper than the SoC), or `None`
    /// when there is no SoC baseline to compare against.
    pub fn saving_vs_soc_display(&self) -> Option<String> {
        // `+ 0.0` folds the negative zero of a SoC winner to "+0.0%".
        self.saving_vs_soc_frac
            .map(|s| format!("{:+.1}%", -s * 100.0 + 0.0))
    }
}

impl fmt::Display for GridWinner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.best {
            Some(c) => {
                write!(
                    f,
                    "{} / {:.0} mm² / {} units: {} × {} chiplets at {} / unit",
                    self.node, self.area_mm2, self.quantity, c.integration, c.chiplets, c.per_unit
                )?;
                if let Some(saving) = self.saving_vs_soc_display() {
                    write!(f, " ({saving} vs SoC)")?;
                }
                Ok(())
            }
            None => write!(
                f,
                "{} / {:.0} mm² / {} units: no feasible configuration",
                self.node, self.area_mm2, self.quantity
            ),
        }
    }
}

/// The outcome of [`explore`]: a sparse grid store plus the post-processed
/// views, all reading through the lifted portfolio result (single systems
/// *are* the one-scheme, one-flow portfolio grid).
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreResult {
    space: ExploreSpace,
    inner: PortfolioResult,
}

impl ExploreResult {
    /// Wraps the lifted portfolio result of a single-system run.
    pub(crate) fn from_inner(space: &ExploreSpace, inner: PortfolioResult) -> Self {
        ExploreResult {
            space: space.clone(),
            inner,
        }
    }

    /// The space that was explored.
    pub fn space(&self) -> &ExploreSpace {
        &self.space
    }

    /// Every cell materialized in deterministic grid order (node → area →
    /// quantity → integration → chiplet count). On huge grids prefer
    /// [`ExploreResult::iter_cells`] or the artifacts, which stream out of
    /// the sparse store without materializing the grid.
    pub fn cells(&self) -> Vec<ExploreCell> {
        self.iter_cells().collect()
    }

    /// Streams every cell in grid order without materializing the grid.
    pub fn iter_cells(&self) -> impl Iterator<Item = ExploreCell> + '_ {
        self.inner.iter_cells().map(ExploreCell::from_portfolio)
    }

    /// The number of grid cells.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the grid has no cells (never true for a validated space).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The number of worker threads the evaluation ran on.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// How many full RE/NRE core evaluations the run performed — under the
    /// default cached policy this is the number of distinct (node, area,
    /// integration, chiplet count) geometries, not the number of cells
    /// (the quantity axis amortizes cached cores instead of re-evaluating
    /// them).
    pub fn core_evaluations(&self) -> usize {
        self.inner.core_evaluations()
    }

    /// The cells that were costed successfully, in grid order.
    pub fn feasible(&self) -> impl Iterator<Item = ExploreCell> + '_ {
        self.inner.feasible().map(ExploreCell::from_portfolio)
    }

    /// How many cells were costed successfully.
    pub fn feasible_count(&self) -> usize {
        self.inner.feasible_count()
    }

    /// How many cells were manufacturable in principle but infeasible.
    pub fn infeasible_count(&self) -> usize {
        self.inner.infeasible_count()
    }

    /// How many cells combined contradictory axes (SoC × several chiplets).
    pub fn incompatible_count(&self) -> usize {
        self.inner.incompatible_count()
    }

    /// How many compatible cells a refinement run skipped (always 0 for
    /// exhaustive runs).
    pub fn pruned_count(&self) -> usize {
        self.inner.pruned_count()
    }

    /// The Pareto front over (per-unit cost, chiplet count), minimizing
    /// both: the cheapest way to buy each level of partitioning restraint.
    /// Returned in ascending per-unit-cost order.
    pub fn pareto_front(&self) -> Vec<ExploreCell> {
        self.inner
            .pareto_front(ReuseScheme::None)
            .into_iter()
            .map(ExploreCell::from_portfolio)
            .collect()
    }

    /// The per-(node, area, quantity) winner table: for every operating
    /// point, the cheapest feasible configuration — the paper's §6
    /// takeaways reproduced mechanically at grid scale. Operating points
    /// with no feasible configuration are reported with `best: None`, not
    /// dropped.
    pub fn winners(&self) -> Vec<GridWinner> {
        self.inner
            .winners(ReuseScheme::None)
            .into_iter()
            .map(|w| GridWinner {
                node: w.node,
                area_mm2: w.area_mm2,
                quantity: w.quantity,
                best: w.best.map(|(candidate, _flow)| candidate),
                saving_vs_soc_frac: w.saving_vs_soc_frac,
            })
            .collect()
    }

    /// The Pareto front over (program total, per-unit cost), minimizing
    /// both: program total is the operating point's whole spend at its
    /// quantity (RE plus the amortized NRE share, i.e. per-unit × units),
    /// the decision-relevant trade-off when budgets cap the *program*
    /// rather than the unit price. Returned in ascending program-total
    /// order.
    pub fn pareto_program(&self) -> Vec<ExploreCell> {
        self.inner
            .pareto_program(ReuseScheme::None)
            .into_iter()
            .map(ExploreCell::from_portfolio)
            .collect()
    }

    /// The full grid as a streaming [`Artifact`] named `"grid"`: one row
    /// per cell in grid order, never materialized as one string
    /// (10⁶-cell grids stay memory-flat); byte-identical across thread
    /// counts.
    pub fn grid_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "grid",
            "grid",
            &[
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "status",
                "per_unit_usd",
                "re_per_unit_usd",
                "detail",
            ],
            move |emit| {
                for cell in self.iter_cells() {
                    let (per_unit, re_per_unit) = match cell.outcome.candidate() {
                        Some(c) => (
                            format!("{:.6}", c.per_unit.usd()),
                            format!("{:.6}", c.re_per_unit.usd()),
                        ),
                        None => (String::new(), String::new()),
                    };
                    emit(&[
                        cell.node.clone(),
                        format!("{}", cell.area_mm2),
                        cell.quantity.to_string(),
                        cell.integration.to_string(),
                        cell.chiplets.to_string(),
                        cell.outcome.status().to_string(),
                        per_unit,
                        re_per_unit,
                        cell.outcome.detail(),
                    ])?;
                }
                Ok(())
            },
        )
    }

    /// The winner table as an [`Artifact`] named `"winners"`, one row per
    /// (node, area, quantity) operating point.
    pub fn winners_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "winners",
            "winners",
            &[
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "per_unit_usd",
                "saving_vs_soc",
            ],
            move |emit| {
                for w in self.winners() {
                    let (integration, chiplets, per_unit) = match &w.best {
                        Some(c) => (
                            c.integration.to_string(),
                            c.chiplets.to_string(),
                            format!("{:.6}", c.per_unit.usd()),
                        ),
                        None => (String::new(), String::new(), String::new()),
                    };
                    emit(&[
                        w.node.clone(),
                        format!("{}", w.area_mm2),
                        w.quantity.to_string(),
                        integration,
                        chiplets,
                        per_unit,
                        w.saving_vs_soc_frac
                            .map(|s| format!("{s:.6}"))
                            .unwrap_or_default(),
                    ])?;
                }
                Ok(())
            },
        )
    }

    /// The (per-unit cost, chiplet count) Pareto front as an [`Artifact`]
    /// named `"pareto"`, in ascending per-unit-cost order.
    pub fn pareto_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "pareto",
            "pareto",
            &[
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "per_unit_usd",
            ],
            move |emit| {
                for cell in self.pareto_front() {
                    let c = cell.outcome.candidate().expect("Pareto cells are feasible");
                    emit(&[
                        cell.node.clone(),
                        format!("{}", cell.area_mm2),
                        cell.quantity.to_string(),
                        cell.integration.to_string(),
                        cell.chiplets.to_string(),
                        format!("{:.6}", c.per_unit.usd()),
                    ])?;
                }
                Ok(())
            },
        )
    }

    /// The [`ExploreResult::pareto_program`] front as an [`Artifact`]
    /// named `"pareto_program"`, in ascending program-total order.
    pub fn pareto_program_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "pareto_program",
            "pareto_program",
            &[
                "node",
                "area_mm2",
                "quantity",
                "integration",
                "chiplets",
                "program_total_usd",
                "per_unit_usd",
            ],
            move |emit| {
                for cell in self.pareto_program() {
                    let c = cell.outcome.candidate().expect("Pareto cells are feasible");
                    emit(&[
                        cell.node.clone(),
                        format!("{}", cell.area_mm2),
                        cell.quantity.to_string(),
                        cell.integration.to_string(),
                        cell.chiplets.to_string(),
                        format!("{:.2}", c.per_unit.usd() * cell.quantity as f64),
                        format!("{:.6}", c.per_unit.usd()),
                    ])?;
                }
                Ok(())
            },
        )
    }
}

impl fmt::Display for ExploreResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells ({} feasible, {} infeasible, {} incompatible",
            self.len(),
            self.feasible_count(),
            self.infeasible_count(),
            self.incompatible_count(),
        )?;
        let pruned = self.pruned_count();
        if pruned > 0 {
            write!(f, ", {pruned} pruned")?;
        }
        write!(f, ") on {} thread(s)", self.threads())
    }
}

/// Evaluates every cell of `space` through the cached RE-core engine, on
/// `threads` worker threads (`0` = the machine's available parallelism).
///
/// Cells are pulled from a pre-expanded work list in chunks via an
/// atomic index, so the split adapts to whatever cells turn out to be
/// slow; results are reassembled in grid order, making the output
/// independent of the thread count. One RE/NRE core is evaluated per
/// distinct (node, area, integration, chiplet count) geometry and
/// re-amortized per quantity — byte-identical to evaluating every cell
/// from scratch, at a third of the work on the default grid.
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] for an invalid space (any
/// empty axis, a zero chiplet count), [`ArchError::Tech`] for an unknown
/// node id, and propagates unexpected engine errors. Per-cell geometric
/// infeasibility is *not* an error — it is recorded in the cell's
/// [`CellOutcome`].
pub fn explore(
    lib: &TechLibrary,
    space: &ExploreSpace,
    threads: usize,
) -> Result<ExploreResult, ArchError> {
    explore_with(lib, space, threads, CorePolicy::Cached)
}

/// [`explore`] under an explicit [`CorePolicy`] — [`CorePolicy::Uncached`]
/// is the evaluate-every-cell reference path the cache is tested against.
///
/// # Errors
///
/// Same conditions as [`explore`].
pub fn explore_with(
    lib: &TechLibrary,
    space: &ExploreSpace,
    threads: usize,
    policy: CorePolicy,
) -> Result<ExploreResult, ArchError> {
    space.validate()?;
    // Resolve every node up front: an unknown id is a caller error, and
    // catching it here keeps the workers infallible on lookups.
    for id in &space.nodes {
        lib.node(id).map_err(ArchError::Tech)?;
    }
    // The portfolio engine with one scheme (standalone systems) and one
    // flow *is* the single-system engine; its grid order (node → area →
    // quantity → integration → chiplets → flow → scheme) degenerates to
    // this module's documented order.
    let lifted = PortfolioSpace::from_single_system(space);
    let result = explore_portfolio_with(lib, &lifted, threads, policy)?;
    Ok(ExploreResult::from_inner(space, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_units::Quantity;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn small_space() -> ExploreSpace {
        ExploreSpace {
            nodes: vec!["7nm".to_string(), "5nm".to_string()],
            areas_mm2: vec![200.0, 600.0],
            quantities: vec![1_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3],
            flow: AssemblyFlow::ChipLast,
        }
    }

    #[test]
    fn default_space_has_the_documented_grid() {
        let space = ExploreSpace::default();
        assert_eq!(space.len(), 3 * 9 * 3 * 4 * 5);
        assert!(!space.is_empty());
        space.validate().unwrap();
    }

    #[test]
    fn every_axis_is_validated_independently() {
        let base = small_space();
        let cases: Vec<(ExploreSpace, &str)> = vec![
            (
                ExploreSpace {
                    nodes: vec![],
                    ..base.clone()
                },
                "nodes",
            ),
            (
                ExploreSpace {
                    areas_mm2: vec![],
                    ..base.clone()
                },
                "areas",
            ),
            (
                ExploreSpace {
                    quantities: vec![],
                    ..base.clone()
                },
                "quantities",
            ),
            (
                ExploreSpace {
                    integrations: vec![],
                    ..base.clone()
                },
                "integration kinds",
            ),
            (
                ExploreSpace {
                    chiplet_counts: vec![],
                    ..base.clone()
                },
                "chiplet counts",
            ),
        ];
        for (space, axis) in cases {
            let err = explore(&lib(), &space, 1).expect_err(axis);
            assert!(err.to_string().contains(axis), "{axis}: {err}");
        }
        let zero_count = ExploreSpace {
            chiplet_counts: vec![1, 0],
            ..base
        };
        assert!(explore(&lib(), &zero_count, 1).is_err());
    }

    #[test]
    fn unknown_node_is_a_hard_error() {
        let space = ExploreSpace {
            nodes: vec!["6nm".to_string()],
            ..small_space()
        };
        assert!(explore(&lib(), &space, 1).is_err());
    }

    #[test]
    fn incompatible_reasons_keep_their_historical_text() {
        assert_eq!(
            IncompatibleReason::MonolithicMultiChip {
                integration: IntegrationKind::Soc,
                chiplets: 3,
            }
            .to_string(),
            "monolithic SoC cannot hold 3 chiplets"
        );
        assert_eq!(
            IncompatibleReason::SingleDieMultiChip {
                integration: IntegrationKind::Mcm,
            }
            .to_string(),
            "MCM needs at least 2 chiplets (a single die has no D2D interface)"
        );
        assert_eq!(
            IncompatibleReason::ScmsNonMember {
                family: ScmsFamily::new(&[1, 2, 4]),
                chiplets: 3,
            }
            .to_string(),
            "SCMS family [1, 2, 4] has no 3-chiplet member"
        );
        assert_eq!(
            IncompatibleReason::OcmeNonMember { chiplets: 4 }.to_string(),
            "OCME family (C, C+1X, C+1X+1Y, C+2X+2Y) has no 4-chip member"
        );
        assert_eq!(
            IncompatibleReason::FsmcOverflow {
                sockets: 2,
                chiplets: 4,
            }
            .to_string(),
            "FSMC package has 2 sockets, cannot collocate 4 chiplets"
        );
        // The interned family renders exactly like the Vec debug format the
        // reason always used, and marks oversized lists instead of lying.
        let long: Vec<u32> = (1..=12).collect();
        assert_eq!(
            ScmsFamily::new(&long).to_string(),
            "[1, 2, 3, 4, 5, 6, 7, 8, ...]"
        );
        assert_eq!(ScmsFamily::new(&[2]).to_string(), "[2]");
    }

    #[test]
    fn grid_is_exhaustive_and_in_canonical_order() {
        let lib = lib();
        let space = small_space();
        let result = explore(&lib, &space, 2).unwrap();
        assert_eq!(result.len(), space.len());
        // First block: 7nm, 200 mm², every integration × count in order.
        let cells = result.cells();
        let first = &cells[0];
        assert_eq!(
            (first.node.as_str(), first.integration, first.chiplets),
            ("7nm", IntegrationKind::Soc, 1)
        );
        let second = &cells[1];
        assert_eq!(
            (second.integration, second.chiplets),
            (IntegrationKind::Soc, 2)
        );
        // SoC × {2, 3} and {Mcm, InFO, 2.5D} × 1 cells are recorded as
        // incompatible, never dropped: 2 + 3 per operating point.
        assert_eq!(
            result.incompatible_count(),
            2 * 2 * 5, // nodes × areas × (2 SoC + 3 multi-chip cells each)
        );
        assert_eq!(
            result.feasible_count() + result.infeasible_count() + result.incompatible_count(),
            result.len()
        );
        assert_eq!(result.pruned_count(), 0, "exhaustive runs prune nothing");
    }

    #[test]
    fn oversized_dies_are_recorded_as_infeasible() {
        let space = ExploreSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![40_000.0], // larger than a 300 mm wafer
            quantities: vec![1_000_000],
            integrations: vec![IntegrationKind::Soc],
            chiplet_counts: vec![1],
            flow: AssemblyFlow::ChipLast,
        };
        let result = explore(&lib(), &space, 1).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.feasible_count(), 0);
        match &result.cells()[0].outcome {
            CellOutcome::Infeasible(reason) => {
                assert!(!reason.is_empty(), "the engine's reason must be kept")
            }
            other => panic!("expected an infeasible cell, got {other:?}"),
        }
        // The winner table reports the dead operating point instead of
        // dropping it.
        let winners = result.winners();
        assert_eq!(winners.len(), 1);
        assert!(winners[0].best.is_none());
        assert!(winners[0].to_string().contains("no feasible"));
    }

    #[test]
    fn serial_and_parallel_runs_agree_exactly() {
        let lib = lib();
        let space = small_space();
        let serial = explore(&lib, &space, 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel = explore(&lib, &space, threads).unwrap();
            assert_eq!(serial.cells(), parallel.cells(), "threads={threads}");
            assert_eq!(
                serial.grid_artifact().csv(),
                parallel.grid_artifact().csv(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn winners_agree_with_the_single_point_optimizer() {
        use crate::optimizer::{recommend, SearchSpace};
        let lib = lib();
        let space = small_space();
        let result = explore(&lib, &space, 2).unwrap();
        // The same feasible configuration set through `recommend`: the SoC
        // baseline plus all multi-chip kinds × {2, 3} (the grid's
        // single-chiplet multi-chip cells are incompatible, so they add
        // nothing).
        let search = SearchSpace {
            chiplet_counts: vec![2, 3],
            integrations: IntegrationKind::MULTI_CHIP.to_vec(),
            flow: AssemblyFlow::ChipLast,
        };
        for w in result.winners() {
            let rec = recommend(
                &lib,
                &w.node,
                Area::from_mm2(w.area_mm2).unwrap(),
                Quantity::new(w.quantity),
                &search,
            )
            .unwrap();
            let best = w.best.as_ref().expect("small grid is fully feasible");
            assert!(
                (best.per_unit.usd() - rec.per_unit.usd()).abs() < 1e-9,
                "{}/{}/{}: grid {} vs optimizer {}",
                w.node,
                w.area_mm2,
                w.quantity,
                best.per_unit,
                rec.per_unit
            );
        }
    }

    #[test]
    fn pareto_front_contains_the_global_minimum() {
        let result = explore(&lib(), &small_space(), 2).unwrap();
        let front = result.pareto_front();
        assert!(!front.is_empty());
        let global_min = result
            .feasible()
            .map(|c| c.outcome.candidate().unwrap().per_unit)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        assert!(front
            .iter()
            .any(|c| c.outcome.candidate().unwrap().per_unit == global_min));
        // Ascending in cost, strictly improving in chiplet count.
        for pair in front.windows(2) {
            let (a, b) = (
                pair[0].outcome.candidate().unwrap(),
                pair[1].outcome.candidate().unwrap(),
            );
            assert!(a.per_unit <= b.per_unit);
            assert!(pair[0].chiplets > pair[1].chiplets);
        }
    }

    #[test]
    fn csv_shapes_are_machine_readable() {
        let result = explore(&lib(), &small_space(), 2).unwrap();
        let grid = result.grid_artifact().csv();
        let mut lines = grid.lines();
        assert_eq!(
            lines.next().unwrap(),
            "node,area_mm2,quantity,integration,chiplets,status,per_unit_usd,re_per_unit_usd,detail"
        );
        assert_eq!(grid.lines().count(), result.len() + 1);
        let winners = result.winners_artifact().csv();
        assert_eq!(
            winners.lines().next().unwrap(),
            "node,area_mm2,quantity,integration,chiplets,per_unit_usd,saving_vs_soc"
        );
        assert_eq!(winners.lines().count(), 2 * 2 + 1); // operating points + header
        let pareto = result.pareto_artifact().csv();
        assert_eq!(
            pareto.lines().next().unwrap(),
            "node,area_mm2,quantity,integration,chiplets,per_unit_usd"
        );
        assert_eq!(pareto.lines().count(), result.pareto_front().len() + 1);
        // Artifacts carry their metadata for composers (file naming).
        assert_eq!(result.grid_artifact().name(), "grid");
        assert_eq!(result.pareto_program_artifact().kind(), "pareto_program");
    }

    #[test]
    fn program_pareto_trades_program_total_against_per_unit() {
        let space = ExploreSpace {
            quantities: vec![500_000, 2_000_000, 10_000_000],
            ..small_space()
        };
        let result = explore(&lib(), &space, 2).unwrap();
        let front = result.pareto_program();
        assert!(!front.is_empty());
        // Ascending program total, strictly improving per-unit cost: paying
        // a bigger program buys a cheaper unit, or the point is dominated.
        for pair in front.windows(2) {
            let (a, b) = (
                pair[0].outcome.candidate().unwrap(),
                pair[1].outcome.candidate().unwrap(),
            );
            let program =
                |cell: &ExploreCell, c: &Candidate| c.per_unit.usd() * cell.quantity as f64;
            assert!(program(&pair[0], a) <= program(&pair[1], b));
            assert!(a.per_unit > b.per_unit);
        }
        // The globally cheapest per-unit cell is always on the front.
        let global_min = result
            .feasible()
            .map(|c| c.outcome.candidate().unwrap().per_unit)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        assert!(front
            .iter()
            .any(|c| c.outcome.candidate().unwrap().per_unit == global_min));
    }

    #[test]
    fn thread_count_is_clamped_and_reported() {
        let space = ExploreSpace {
            nodes: vec!["7nm".to_string()],
            areas_mm2: vec![200.0],
            quantities: vec![1_000_000],
            integrations: vec![IntegrationKind::Mcm],
            chiplet_counts: vec![2],
            flow: AssemblyFlow::ChipLast,
        };
        let result = explore(&lib(), &space, 64).unwrap();
        assert_eq!(result.threads(), 1, "one cell cannot use 64 threads");
        assert!(result.to_string().contains("1 cells"), "{result}");
    }
}
