//! Quickstart: should my 600 mm² 5 nm design be one die or two chiplets?
//!
//! Run with `cargo run --example quickstart`.

use chiplet_actuary::prelude::*;
use chiplet_actuary::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TechLibrary::paper_defaults()?;
    let n5 = lib.node("5nm")?;
    let module_area = Area::from_mm2(600.0)?;

    println!("== chiplet-actuary quickstart ==\n");
    println!(
        "design: {module_area} of logic at {} (D = {}, wafer {})\n",
        n5.id(),
        n5.defect_density(),
        n5.wafer_price()
    );

    // Sanity anchor against the paper's Figure 2: a monolithic 800 mm² die
    // at 3 nm yields ≈ 22.7 % under Eq. (1).
    let n3 = lib.node("3nm")?;
    let anchor = n3.die_yield(Area::from_mm2(800.0)?);
    println!("paper anchor (Fig. 2): 3nm, 800 mm² die yield = {anchor} (paper: ≈ 22.7%)\n");

    // --- RE cost: monolithic SoC vs two-chiplet MCM. ----------------------
    let soc = re_cost(
        &[DiePlacement::new(n5, module_area, 1)],
        lib.packaging(IntegrationKind::Soc)?,
        AssemblyFlow::ChipLast,
    )?;
    let chiplet_die = n5.d2d().inflate_module_area(module_area / 2.0)?;
    let mcm = re_cost(
        &[DiePlacement::new(n5, chiplet_die, 2)],
        lib.packaging(IntegrationKind::Mcm)?,
        AssemblyFlow::ChipLast,
    )?;

    let mut table = Table::new(vec!["component", "SoC", "2-chiplet MCM"]);
    for ((label, soc_part), (_, mcm_part)) in soc.components().iter().zip(mcm.components().iter()) {
        table.push_row(vec![
            label.to_string(),
            format!("{soc_part}"),
            format!("{mcm_part}"),
        ]);
    }
    table.push_row(vec![
        "TOTAL (RE / unit)".to_string(),
        format!("{}", soc.total()),
        format!("{}", mcm.total()),
    ]);
    println!("{table}");

    let saving = (soc.total().usd() - mcm.total().usd()) / soc.total().usd();
    println!(
        "re-partitioning saves {:.1}% of the recurring cost\n",
        saving * 100.0
    );

    // --- Total cost: when does the chiplet NRE pay back? -------------------
    println!("per-unit total cost (RE + amortized NRE), no reuse:");
    let mut totals = Table::new(vec!["quantity", "SoC", "2-chiplet MCM", "winner"]);
    for quantity in [200_000u64, 500_000, 2_000_000, 10_000_000] {
        let build = |kind: IntegrationKind, n: u32| -> Result<Money, Box<dyn std::error::Error>> {
            let chips = partition::equal_chiplets("qs", "5nm", module_area, n)?;
            let mut builder = System::builder("qs-sys", kind).quantity(Quantity::new(quantity));
            for chip in chips {
                builder = builder.chip(chip, 1);
            }
            let cost = Portfolio::new(vec![builder.build()?]).cost(&lib, AssemblyFlow::ChipLast)?;
            Ok(cost.systems()[0].per_unit_total())
        };
        let soc_total = build(IntegrationKind::Soc, 1)?;
        let mcm_total = build(IntegrationKind::Mcm, 2)?;
        totals.push_row(vec![
            Quantity::new(quantity).to_string(),
            soc_total.to_string(),
            mcm_total.to_string(),
            if mcm_total < soc_total { "MCM" } else { "SoC" }.to_string(),
        ]);
    }
    println!("{totals}");
    println!("(the paper's §4.2: a single system should stay monolithic unless the");
    println!(" production quantity is large enough to amortize the extra chip NRE)");
    Ok(())
}
