//! Die harvesting (binning) extension: how partial-good salvage changes the
//! chiplet-vs-monolithic comparison.
//!
//! The paper's yield model scraps any die with a defect. Real products bin:
//! an 8-core CCD with one bad core ships as a 6-core SKU. This example uses
//! the closed-form salvage model ([`HarvestSpec`]) to re-run the AMD-style
//! comparison of Figure 5 with binning enabled.
//!
//! Run with `cargo run --example harvest_binning`.

use chiplet_actuary::prelude::*;
use chiplet_actuary::report::Table;
use chiplet_actuary::yield_model::HarvestSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TechLibrary::paper_defaults()?;
    let n7 = lib.node("7nm")?;
    let ccd = Area::from_mm2(74.0)?;
    // Early-ramp 7 nm, as the paper's Figure 5 assumes.
    let d = chiplet_actuary::yield_model::DefectDensity::per_cm2(0.13)?;
    let cluster = 10.0;
    let raw = n7.wafer().raw_die_cost(n7.wafer_price(), ccd)?;

    println!("== die harvesting on a 74 mm² 8-core CCD (7nm, D=0.13) ==\n");
    let mut table = Table::new(vec![
        "bin requirement",
        "sellable yield",
        "cost per sellable die",
        "vs strict",
    ]);
    let strict = HarvestSpec::new(8, 8, 0.60)?;
    let strict_cost = strict.cost_per_sellable_die(raw, d, ccd, cluster)?;
    for min_good in [8u32, 7, 6, 4] {
        let spec = HarvestSpec::new(8, min_good, 0.60)?;
        let y = spec.sellable_yield(d, ccd, cluster)?;
        let cost = spec.cost_per_sellable_die(raw, d, ccd, cluster)?;
        table.push_row(vec![
            format!("≥{min_good} of 8 cores"),
            y.to_string(),
            cost.to_string(),
            format!("{:+.1}%", (cost.usd() / strict_cost.usd() - 1.0) * 100.0),
        ]);
    }
    println!("{table}");

    // The monolithic competitor gains even more from salvage: a 64-core
    // monolithic die has 64 cores to harvest across, but one defect in the
    // uncore still kills it — compare the uncore exposure.
    println!("monolithic 64-core die (≈700 mm²) vs 8 chiplets, both with ≥75% cores good:");
    let mono_area = Area::from_mm2(700.0)?;
    let mono_raw = n7.wafer().raw_die_cost(n7.wafer_price(), mono_area)?;
    let mono = HarvestSpec::new(64, 48, 0.60)?;
    let mono_y = mono.sellable_yield(d, mono_area, cluster)?;
    let mono_cost = mono.cost_per_sellable_die(mono_raw, d, mono_area, cluster)?;
    let chiplet = HarvestSpec::new(8, 6, 0.60)?;
    let chiplet_y = chiplet.sellable_yield(d, ccd, cluster)?;
    let chiplet_cost = chiplet.cost_per_sellable_die(raw, d, ccd, cluster)?;
    println!("  monolithic: sellable yield {mono_y}, {mono_cost} per die");
    println!(
        "  chiplets:   sellable yield {chiplet_y}, {} for 8 dies",
        chiplet_cost * 8.0
    );
    println!(
        "\nsalvage narrows the yield gap (the monolithic uncore is {:.0} mm² of\n\
         unrepairable area vs {:.0} mm² per chiplet), but the chiplet version\n\
         still wins on silicon cost — binning strengthens, not replaces, the\n\
         paper's conclusion that defect cost drives re-partitioning",
        mono_area.mm2() * 0.4,
        ccd.mm2() * 0.4
    );
    Ok(())
}
