//! Bringing your own data: define a custom process node and packaging
//! technology, then rerun the paper's core comparison on them — the
//! "include the latest relevant data" workflow of §4.
//!
//! Run with `cargo run --example custom_technology`.

use chiplet_actuary::dse::maturity::{library_at_age, DefectRamp};
use chiplet_actuary::dse::sensitivity::elasticity;
use chiplet_actuary::prelude::*;
use chiplet_actuary::tech::{InterposerSpec, PackagingTech};
use chiplet_actuary::yield_model::DefectDensity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start from the paper's calibration and add a hypothetical "2nm"
    // node with early-ramp yield.
    let mut lib = TechLibrary::paper_defaults()?;
    lib.insert_node(
        ProcessNode::builder("2nm")
            .defect_density(0.30)
            .cluster(10.0)
            .wafer_price(Money::from_usd(45_000.0)?)
            .k_module(Money::from_usd(2_200_000.0)?)
            .k_chip(Money::from_usd(1_300_000.0)?)
            .mask_set(Money::from_musd(50.0)?)
            .ip_license(Money::from_musd(12.0)?)
            .relative_density(8.0)
            .d2d(D2dSpec::new(0.10, Money::from_musd(25.0)?)?)
            .build()?,
    );
    // And a hypothetical bridge-based packaging option: cheaper interposer
    // covering only die edges (modelled as a small-area-factor interposer).
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Info)
            .substrate_cost_per_mm2(Money::from_usd(0.005)?)
            .package_body_factor(4.0)
            .chip_bond_yield(Prob::new(0.99)?)
            .substrate_attach_yield(Prob::new(0.99)?)
            .package_test_yield(Prob::new(0.99)?)
            .bond_cost_per_chip(Money::from_usd(1.0)?)
            .assembly_cost(Money::from_usd(8.0)?)
            .interposer(InterposerSpec::new(
                DefectDensity::per_cm2(0.04)?,
                3.0,
                Money::from_usd(900.0)?,
                WaferSpec::mm300()?,
                1.05,
            )?)
            .k_package_per_mm2(Money::from_usd(15_000.0)?)
            .fixed_package_nre(Money::from_musd(2.0)?)
            .build()?,
    );

    let n2 = lib.node("2nm")?;
    let module_area = Area::from_mm2(700.0)?;
    println!("== custom 2nm node (D=0.30 early ramp, $45k wafers) ==\n");

    let soc = re_cost(
        &[DiePlacement::new(n2, module_area, 1)],
        lib.packaging(IntegrationKind::Soc)?,
        AssemblyFlow::ChipLast,
    )?;
    for n in [2u32, 3, 4] {
        let die = n2.d2d().inflate_module_area(module_area / n as f64)?;
        let multi = re_cost(
            &[DiePlacement::new(n2, die, n)],
            lib.packaging(IntegrationKind::Info)?,
            AssemblyFlow::ChipLast,
        )?;
        println!(
            "{n} chiplets on bridge-InFO: {} vs monolithic {} ({:+.1}%)",
            multi.total(),
            soc.total(),
            (multi.total().usd() / soc.total().usd() - 1.0) * 100.0
        );
    }

    // How sensitive is the monolithic cost to the defect-density guess?
    let base_d = n2.defect_density().value();
    let e = elasticity(base_d, 0.01, |d| {
        let snapshot = lib.with_modified_node("2nm", |node| {
            ProcessNode::builder(node.id().clone())
                .defect_density(d)
                .cluster(node.cluster())
                .wafer_price(node.wafer_price())
                .k_module(node.nre().k_module)
                .k_chip(node.nre().k_chip)
                .mask_set(node.nre().mask_set)
                .ip_license(node.nre().ip_license)
                .relative_density(node.relative_density())
                .d2d(*node.d2d())
                .build()
        })?;
        let b = re_cost(
            &[DiePlacement::new(snapshot.node("2nm")?, module_area, 1)],
            snapshot.packaging(IntegrationKind::Soc)?,
            AssemblyFlow::ChipLast,
        )?;
        Ok(b.total().usd())
    })?;
    println!("\nelasticity of the monolithic cost wrt defect density: {e:.2}");

    // Replay the comparison as the process matures (D: 0.30 → 0.08).
    println!("\nmaturity ramp (exponential learning, τ = 12 months):");
    let ramp = DefectRamp::new(0.30, 0.08, 12.0)?;
    for months in [0.0, 6.0, 12.0, 24.0, 48.0] {
        let snapshot = library_at_age(&lib, "2nm", &ramp, months)?;
        let node = snapshot.node("2nm")?;
        let soc = re_cost(
            &[DiePlacement::new(node, module_area, 1)],
            snapshot.packaging(IntegrationKind::Soc)?,
            AssemblyFlow::ChipLast,
        )?;
        let die = node.d2d().inflate_module_area(module_area / 2.0)?;
        let mcm = re_cost(
            &[DiePlacement::new(node, die, 2)],
            snapshot.packaging(IntegrationKind::Mcm)?,
            AssemblyFlow::ChipLast,
        )?;
        println!(
            "  t={months:>4.0} mo  D={}  chiplet saving {:>5.1}%",
            node.defect_density(),
            (1.0 - mcm.total().usd() / soc.total().usd()) * 100.0
        );
    }
    println!("\n(§4.1: as the process matures the chiplet advantage shrinks)");
    Ok(())
}
