//! Partitioning a realistic heterogeneous module list into chiplets:
//! exhaustive search over set partitions, driven by total cost.
//!
//! Run with `cargo run --example partition_explorer`.

use chiplet_actuary::arch::partition::{best_partition, chips_for_partition};
use chiplet_actuary::dse::optimizer::{recommend, SearchSpace};
use chiplet_actuary::prelude::*;
use chiplet_actuary::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TechLibrary::paper_defaults()?;
    let node = "5nm";
    let quantity = Quantity::new(5_000_000);

    // A server-SoC-like module list (areas in mm² at 5 nm).
    let modules = vec![
        Module::new("core-cluster-0", node, Area::from_mm2(120.0)?),
        Module::new("core-cluster-1", node, Area::from_mm2(120.0)?),
        Module::new("l3-cache", node, Area::from_mm2(90.0)?),
        Module::new("memory-ctrl", node, Area::from_mm2(70.0)?),
        Module::new("io-serdes", node, Area::from_mm2(80.0)?),
        Module::new("accelerator", node, Area::from_mm2(110.0)?),
    ];
    let total: Area = modules.iter().map(|m| m.area()).sum();
    println!("== partition explorer: {total} of modules at {node}, {quantity} units ==\n");

    // Cost of a concrete partition: build the chiplets, wrap them in an MCM
    // system, take per-unit total cost (single-system portfolio).
    let cost_of = |partition: &Vec<Vec<usize>>| -> Result<f64, chiplet_actuary::arch::ArchError> {
        let chips = chips_for_partition("srv", node, &modules, partition)?;
        let kind = if chips.len() == 1 {
            IntegrationKind::Soc
        } else {
            IntegrationKind::Mcm
        };
        let mut builder = System::builder("srv-sys", kind).quantity(quantity);
        for chip in chips {
            builder = builder.chip(chip, 1);
        }
        let cost = Portfolio::new(vec![builder.build()?]).cost(&lib, AssemblyFlow::ChipLast)?;
        Ok(cost.systems()[0].per_unit_total().usd())
    };

    let mut table = Table::new(vec!["max chiplets", "best grouping", "per-unit total"]);
    for max_groups in 1..=4usize {
        let (best, cost) = best_partition(&modules, max_groups, |p| cost_of(p))?;
        let grouping = best
            .iter()
            .map(|group| {
                let names: Vec<&str> = group.iter().map(|&i| modules[i].name()).collect();
                format!("[{}]", names.join(" "))
            })
            .collect::<Vec<_>>()
            .join(" ");
        table.push_row(vec![
            max_groups.to_string(),
            grouping,
            format!("${cost:.2}"),
        ]);
    }
    println!("{table}");

    // Cross-check with the coarse optimizer (equal splits, all schemes).
    let rec = recommend(&lib, node, total, quantity, &SearchSpace::default())?;
    println!("coarse equal-split optimizer says: {rec}");
    println!("\n(§6: \"splitting a single system into two or three chiplets is usually");
    println!(" sufficient\" — the exhaustive search agrees: gains flatten beyond 2-3.)");
    Ok(())
}
