//! The paper's Figure 5 scenario as a library walkthrough: AMD-style
//! 7 nm CCDs + 12 nm IOD on an MCM vs a hypothetical monolithic 7 nm die.
//!
//! Run with `cargo run --example amd_epyc`.

use chiplet_actuary::figures::fig5;
use chiplet_actuary::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = TechLibrary::paper_defaults()?;

    println!("== AMD EPYC-style chiplet validation (paper Figure 5) ==\n");
    println!(
        "assumptions: CCD {} mm² @7nm (D={}), IOD {} mm² @12nm (D={}), 8 cores/CCD,",
        fig5::CCD_AREA_MM2,
        fig5::D_7NM,
        fig5::IOD_AREA_MM2,
        fig5::D_12NM
    );
    println!("constant server-socket substrate sized for the 64-core configuration\n");

    let fig = fig5::compute(&base)?;
    println!("{}", fig.to_table());
    println!("{}", fig.render());

    for check in fig.checks() {
        println!("{check}");
    }

    // Bonus: what the same dies would cost if assembled chip-first — the
    // flow comparison behind the paper's Eq. (5).
    let lib = fig5::validation_library(&base)?;
    let n7 = lib.node("7nm")?;
    let n12 = lib.node("12nm")?;
    let mcm = lib.packaging(IntegrationKind::Mcm)?;
    let dies = [
        DiePlacement::new(n7, Area::from_mm2(fig5::CCD_AREA_MM2)?, 8),
        DiePlacement::new(n12, Area::from_mm2(fig5::IOD_AREA_MM2)?, 1),
    ];
    let last = re_cost(&dies, mcm, AssemblyFlow::ChipLast)?;
    let first = re_cost(&dies, mcm, AssemblyFlow::ChipFirst)?;
    println!(
        "\n64-core assembly flow check (Eq. 5): chip-last {} vs chip-first {} per unit",
        last.total(),
        first.total()
    );
    Ok(())
}
