//! Validating the analytic cost equations (Eq. 4/5) against the
//! Monte-Carlo assembly-flow simulator, including the clustered-defect
//! wafer model behind Eq. (1).
//!
//! Run with `cargo run --release --example monte_carlo_validation`.

use chiplet_actuary::mc::{simulate_system, DefectProcess, McConfig};
use chiplet_actuary::prelude::*;
use chiplet_actuary::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TechLibrary::paper_defaults()?;

    let chiplet = Chip::chiplet(
        "compute",
        "7nm",
        vec![Module::new("compute-m", "7nm", Area::from_mm2(180.0)?)],
    );
    println!("== Monte-Carlo vs analytic: 2×200mm² dies, every flow and scheme ==\n");

    let mut table = Table::new(vec![
        "integration",
        "flow",
        "defects",
        "analytic",
        "monte-carlo",
        "std err",
        "agree",
    ]);

    for kind in [
        IntegrationKind::Mcm,
        IntegrationKind::Info,
        IntegrationKind::TwoPointFiveD,
    ] {
        let system = System::builder("mc-sys", kind)
            .chip(chiplet.clone(), 2)
            .quantity(Quantity::new(500_000))
            .build()?;
        for flow in [AssemblyFlow::ChipLast, AssemblyFlow::ChipFirst] {
            for process in [DefectProcess::Bernoulli, DefectProcess::CompoundGamma] {
                let analytic = system.re_cost(&lib, flow, None)?.total();
                let cfg = McConfig {
                    systems: 4_000,
                    seed: 2024,
                    defect_process: process,
                };
                let result = simulate_system(&system, &lib, flow, &cfg)?;
                // The reported standard error assumes i.i.d. systems. Under
                // the compound Gamma-Poisson process, dies sampled from the
                // same wafer share its defect multiplier, so the i.i.d.
                // estimate understates the true sampling spread — widen the
                // band for that process (same reasoning as the
                // compound_gamma_also_converges_in_mean unit test).
                let sigmas = match process {
                    DefectProcess::Bernoulli => 4.0,
                    DefectProcess::CompoundGamma => 6.0,
                };
                table.push_row(vec![
                    kind.to_string(),
                    flow.to_string(),
                    process.to_string(),
                    analytic.to_string(),
                    result.mean_cost().to_string(),
                    result.std_error().to_string(),
                    if result.agrees_with(analytic, sigmas) {
                        format!("yes ({sigmas:.0}σ)")
                    } else {
                        format!("NO ({sigmas:.0}σ)")
                    },
                ]);
            }
        }
    }
    println!("{table}");
    println!("the law of large numbers closes the loop: the paper's closed-form");
    println!("expected costs match a mechanistic simulation of the production line\n");

    // Bonus: what defect clustering looks like. Two wafers of 300 mm² dies
    // under the compound Gamma-Poisson process — one lucky, one unlucky.
    use chiplet_actuary::mc::WaferMap;
    let node = lib.node("5nm")?;
    println!("== clustered-defect wafer maps (5nm, 300 mm² dies) ==");
    for seed in [3u64, 11] {
        let map = WaferMap::simulate(
            node,
            Area::from_mm2(300.0)?,
            DefectProcess::CompoundGamma,
            seed,
        )?;
        println!(
            "wafer #{seed} (defect-rate multiplier {:.2}):",
            map.defect_multiplier()
        );
        println!("{}", map.render());
    }
    Ok(())
}
