//! The three chiplet-reuse schemes of the paper's §5 (SCMS, OCME, FSMC)
//! evaluated as portfolios, with per-system cost breakdowns.
//!
//! Run with `cargo run --example reuse_portfolio`.

use chiplet_actuary::arch::reuse::{FsmcSpec, OcmeSpec, ScmsSpec};
use chiplet_actuary::prelude::*;
use chiplet_actuary::report::Table;

fn print_portfolio(title: &str, cost: &PortfolioCost) -> Result<(), Box<dyn std::error::Error>> {
    println!("-- {title} --");
    let mut table = Table::new(vec![
        "system",
        "RE/unit",
        "NRE/unit",
        "total/unit",
        "RE share",
    ]);
    for sc in cost.systems() {
        table.push_row(vec![
            sc.name().to_string(),
            sc.re().total().to_string(),
            sc.nre_per_unit().total().to_string(),
            sc.per_unit_total().to_string(),
            format!("{:.0}%", sc.re_share() * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "portfolio NRE {} | program total {} | average per-unit {}\n",
        cost.nre_total().total(),
        cost.program_total(),
        cost.average_per_unit()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TechLibrary::paper_defaults()?;
    let flow = AssemblyFlow::ChipLast;

    // --- SCMS: one chiplet, three system grades (§5.1). -------------------
    let scms = ScmsSpec::paper_example()?;
    print_portfolio(
        "SCMS: one 7nm 200mm² chiplet builds 1X/2X/4X on MCM",
        &scms.portfolio()?.cost(&lib, flow)?,
    )?;
    let mut scms_reuse = ScmsSpec::paper_example()?;
    scms_reuse.package_reuse = true;
    print_portfolio(
        "SCMS with package reuse (one 4X-sized package design)",
        &scms_reuse.portfolio()?.cost(&lib, flow)?,
    )?;

    // --- OCME: a reused center + extensions, heterogeneous option (§5.2). --
    let mut ocme = OcmeSpec::paper_example()?;
    ocme.package_reuse = true;
    print_portfolio(
        "OCME: center + extensions, shared package",
        &ocme.portfolio()?.cost(&lib, flow)?,
    )?;
    ocme.center_node = Some(NodeId::new("14nm"));
    print_portfolio(
        "OCME heterogeneous: the center die moves to 14nm",
        &ocme.portfolio()?.cost(&lib, flow)?,
    )?;

    // --- FSMC: k sockets × n chiplet types, every collocation (§5.3). -----
    let fsmc = FsmcSpec::paper_example(3, 4)?;
    println!(
        "FSMC (k=3 sockets, n=4 types) builds {} distinct systems from 4 chiplets",
        fsmc.system_count()
    );
    let cost = fsmc.portfolio()?.cost(&lib, flow)?;
    println!(
        "average per-unit cost {} vs per-system SoCs {}\n",
        cost.average_per_unit(),
        fsmc.soc_portfolio()?.cost(&lib, flow)?.average_per_unit()
    );
    println!("(§5.3: \"the basic principle is building more systems by fewer chiplets\")");
    Ok(())
}
