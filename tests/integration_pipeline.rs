//! End-to-end pipeline tests: custom technology definition → architecture →
//! analytic cost → Monte-Carlo agreement → DSE, all through the facade.

use chiplet_actuary::dse::crossover::{find_area_crossover, find_quantity_payback};
use chiplet_actuary::dse::optimizer::{recommend, SearchSpace};
use chiplet_actuary::mc::{simulate_system, DefectProcess, McConfig};
use chiplet_actuary::prelude::*;
use chiplet_actuary::tech::D2dSpec;

/// Builds a miniature custom library (one node, SoC + MCM) from scratch —
/// nothing taken from the presets.
fn custom_library() -> TechLibrary {
    let mut lib = TechLibrary::new();
    lib.insert_node(
        ProcessNode::builder("test-node")
            .defect_density(0.10)
            .cluster(8.0)
            .wafer_price(Money::from_usd(8_000.0).unwrap())
            .k_module(Money::from_usd(400_000.0).unwrap())
            .k_chip(Money::from_usd(250_000.0).unwrap())
            .mask_set(Money::from_musd(8.0).unwrap())
            .ip_license(Money::from_musd(2.0).unwrap())
            .relative_density(2.0)
            .d2d(D2dSpec::new(0.08, Money::from_musd(7.0).unwrap()).unwrap())
            .build()
            .unwrap(),
    );
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Soc)
            .substrate_cost_per_mm2(Money::from_usd(0.004).unwrap())
            .package_body_factor(3.5)
            .chip_bond_yield(Prob::new(0.995).unwrap())
            .package_test_yield(Prob::new(0.99).unwrap())
            .bond_cost_per_chip(Money::from_usd(0.4).unwrap())
            .assembly_cost(Money::from_usd(4.0).unwrap())
            .k_package_per_mm2(Money::from_usd(4_000.0).unwrap())
            .fixed_package_nre(Money::from_musd(1.5).unwrap())
            .build()
            .unwrap(),
    );
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Mcm)
            .substrate_cost_per_mm2(Money::from_usd(0.004).unwrap())
            .substrate_layer_factor(1.8)
            .package_body_factor(3.5)
            .chip_bond_yield(Prob::new(0.99).unwrap())
            .package_test_yield(Prob::new(0.99).unwrap())
            .bond_cost_per_chip(Money::from_usd(0.4).unwrap())
            .assembly_cost(Money::from_usd(4.0).unwrap())
            .k_package_per_mm2(Money::from_usd(6_000.0).unwrap())
            .fixed_package_nre(Money::from_musd(2.0).unwrap())
            .build()
            .unwrap(),
    );
    lib
}

#[test]
fn custom_library_runs_the_whole_stack() {
    let lib = custom_library();
    let node = lib.node("test-node").unwrap();

    // Analytic RE on the custom node.
    let module_area = Area::from_mm2(500.0).unwrap();
    let soc = re_cost(
        &[DiePlacement::new(node, module_area, 1)],
        lib.packaging(IntegrationKind::Soc).unwrap(),
        AssemblyFlow::ChipLast,
    )
    .unwrap();
    let die = node.d2d().inflate_module_area(module_area / 2.0).unwrap();
    let mcm = re_cost(
        &[DiePlacement::new(node, die, 2)],
        lib.packaging(IntegrationKind::Mcm).unwrap(),
        AssemblyFlow::ChipLast,
    )
    .unwrap();
    assert!(soc.is_non_negative() && mcm.is_non_negative());
    assert!(
        mcm.total() < soc.total(),
        "500 mm² at D=0.10 should favour two chiplets: {} vs {}",
        mcm.total(),
        soc.total()
    );

    // Portfolio NRE on the custom node.
    let chip = Chip::chiplet(
        "custom-chip",
        "test-node",
        vec![Module::new("custom-m", "test-node", module_area / 2.0)],
    );
    let system = System::builder("custom-sys", IntegrationKind::Mcm)
        .chip(chip, 2)
        .quantity(Quantity::new(1_000_000))
        .build()
        .unwrap();
    let cost = Portfolio::new(vec![system.clone()])
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    assert!(cost.nre_total().total().usd() > 0.0);
    assert_eq!(cost.nre_total().d2d, Money::from_musd(7.0).unwrap());

    // Monte-Carlo agreement on the custom node.
    let cfg = McConfig {
        systems: 4_000,
        seed: 11,
        defect_process: DefectProcess::Bernoulli,
    };
    let mc = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
    assert!(
        mc.agrees_with(mcm.total(), 4.0),
        "MC {mc} vs analytic {}",
        mcm.total()
    );

    // DSE on the custom node.
    let space = SearchSpace {
        chiplet_counts: vec![2, 3],
        integrations: vec![IntegrationKind::Mcm],
        flow: AssemblyFlow::ChipLast,
    };
    let rec = recommend(
        &lib,
        "test-node",
        module_area,
        Quantity::new(20_000_000),
        &space,
    )
    .unwrap();
    assert!(
        rec.chiplets >= 2,
        "high volume on a leaky node must split: {rec}"
    );
}

#[test]
fn area_crossover_exists_and_is_reasonable_at_5nm() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let node = lib.node("5nm").unwrap();
    let soc_pkg = lib.packaging(IntegrationKind::Soc).unwrap();
    let mcm_pkg = lib.packaging(IntegrationKind::Mcm).unwrap();
    let crossover = find_area_crossover(
        |area| {
            let soc = re_cost(
                &[DiePlacement::new(node, area, 1)],
                soc_pkg,
                AssemblyFlow::ChipLast,
            )?;
            let die = node.d2d().inflate_module_area(area / 2.0)?;
            let mcm = re_cost(
                &[DiePlacement::new(node, die, 2)],
                mcm_pkg,
                AssemblyFlow::ChipLast,
            )?;
            Ok(mcm.total().usd() - soc.total().usd())
        },
        50.0,
        900.0,
        0.5,
    )
    .unwrap()
    .expect("a 5 nm crossover must exist between 50 and 900 mm²");
    // The paper's Figure 4: the 5 nm turning point is small (well before
    // mid-range areas).
    assert!(
        crossover.mm2() < 500.0,
        "5 nm crossover at {crossover} is implausibly late"
    );
}

#[test]
fn quantity_payback_for_5nm_mcm_is_near_two_million() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let module_area = Area::from_mm2(800.0).unwrap();
    let per_unit = |kind: IntegrationKind,
                    n: u32,
                    q: Quantity|
     -> Result<f64, chiplet_actuary::arch::ArchError> {
        let chips = partition::equal_chiplets("pp", "5nm", module_area, n)?;
        let mut builder = System::builder("pp-sys", kind).quantity(q);
        for chip in chips {
            builder = builder.chip(chip, 1);
        }
        let cost = Portfolio::new(vec![builder.build()?]).cost(&lib, AssemblyFlow::ChipLast)?;
        Ok(cost.systems()[0].per_unit_total().usd())
    };
    let payback = find_quantity_payback(
        |q| Ok(per_unit(IntegrationKind::Mcm, 2, q)? - per_unit(IntegrationKind::Soc, 1, q)?),
        Quantity::new(100_000),
        Quantity::new(50_000_000),
    )
    .unwrap()
    .expect("the 5 nm 800 mm² MCM must pay back at some quantity");
    // §4.2: "when the quantity reaches two million, multi-chip architecture
    // starts to pay back" — accept a broad band around 2 M.
    assert!(
        (300_000..=4_000_000).contains(&payback.count()),
        "payback at {payback} is out of the paper's band"
    );
}

#[test]
fn reticle_forces_multi_chip_beyond_858mm2() {
    let reticle = Reticle::standard();
    let too_big = Area::from_mm2(1_000.0).unwrap();
    assert!(reticle.check_area(too_big).is_err());
    // Two chiplets of 500 mm² each fit fine.
    let half = Area::from_mm2(500.0).unwrap();
    assert!(reticle.check_area(half).is_ok());
}

#[test]
fn chip_first_vs_chip_last_matches_paper_preference() {
    // §3.2: "chip-last packaging is the priority selection for multi-chip
    // systems" — verified across all advanced packaging kinds and sizes.
    let lib = TechLibrary::paper_defaults().unwrap();
    let node = lib.node("7nm").unwrap();
    for kind in [IntegrationKind::Info, IntegrationKind::TwoPointFiveD] {
        let packaging = lib.packaging(kind).unwrap();
        for mm2 in [100.0, 300.0, 500.0] {
            for n in [2u32, 4] {
                let dies = [DiePlacement::new(node, Area::from_mm2(mm2).unwrap(), n)];
                let last = re_cost(&dies, packaging, AssemblyFlow::ChipLast).unwrap();
                let first = re_cost(&dies, packaging, AssemblyFlow::ChipFirst).unwrap();
                assert!(
                    last.total() <= first.total(),
                    "{kind} {mm2}mm² ×{n}: chip-last must win"
                );
            }
        }
    }
}
