//! End-to-end reproduction tests: every figure of the paper computes from
//! the default library and every qualitative claim from the paper's prose
//! holds ("shape checks"). This is the repository's headline guarantee.

use chiplet_actuary::figures::{fig10, fig2, fig4, fig5, fig6, fig8, fig9, ShapeCheck};
use chiplet_actuary::prelude::*;

fn assert_all_pass(figure: &str, checks: &[ShapeCheck]) {
    let failures: Vec<&ShapeCheck> = checks.iter().filter(|c| !c.pass).collect();
    assert!(
        failures.is_empty(),
        "{figure}: {} claim(s) failed:\n{}",
        failures.len(),
        failures
            .iter()
            .map(|c| format!("  {c}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn figure2_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig2::compute(&lib).unwrap();
    assert_eq!(fig.technologies().len(), 6);
    assert_all_pass("Figure 2", &fig.checks());
}

#[test]
fn figure4_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig4::compute(&lib).unwrap();
    assert_eq!(fig.cells.len(), 324);
    assert_all_pass("Figure 4", &fig.checks());
}

#[test]
fn figure5_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig5::compute(&lib).unwrap();
    assert_all_pass("Figure 5", &fig.checks());
}

#[test]
fn figure6_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig6::compute(&lib).unwrap();
    assert_all_pass("Figure 6", &fig.checks());
}

#[test]
fn figure8_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig8::compute(&lib).unwrap();
    assert_all_pass("Figure 8", &fig.checks());
}

#[test]
fn figure9_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig9::compute(&lib).unwrap();
    assert_all_pass("Figure 9", &fig.checks());
}

#[test]
fn figure10_reproduces_with_all_claims() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let fig = fig10::compute(&lib).unwrap();
    assert_all_pass("Figure 10", &fig.checks());
}

/// Cross-figure consistency: Figure 4's SoC bar at (5nm, 800 mm²) and
/// Figure 6's 5 nm SoC RE must describe the same system, so their ratios to
/// their own normalization bases must agree.
#[test]
fn figure4_and_figure6_describe_the_same_soc() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let n5 = lib.node("5nm").unwrap();

    // Figure 4's normalized SoC total × its basis = absolute RE cost.
    let fig4 = fig4::compute(&lib).unwrap();
    let bar = fig4.cell("5nm", 2, IntegrationKind::Soc, 800.0).unwrap();
    let basis = re_cost(
        &[DiePlacement::new(n5, Area::from_mm2(100.0).unwrap(), 1)],
        lib.packaging(IntegrationKind::Soc).unwrap(),
        AssemblyFlow::ChipLast,
    )
    .unwrap()
    .total();
    let fig4_absolute = bar.total() * basis.usd();

    let direct = re_cost(
        &[DiePlacement::new(n5, Area::from_mm2(800.0).unwrap(), 1)],
        lib.packaging(IntegrationKind::Soc).unwrap(),
        AssemblyFlow::ChipLast,
    )
    .unwrap()
    .total();
    assert!(
        (fig4_absolute - direct.usd()).abs() < 1e-6,
        "fig4 {} vs direct {}",
        fig4_absolute,
        direct
    );
}

/// The renders and tables never panic and carry the full datasets (these
/// are what the benches and EXPERIMENTS.md print).
#[test]
fn all_figures_render_and_tabulate() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let f2 = fig2::compute(&lib).unwrap();
    assert!(f2.render().contains("Figure 2a"));
    assert_eq!(f2.to_table().row_count(), f2.rows.len());

    let f4 = fig4::compute(&lib).unwrap();
    assert!(f4.render().len() > 1000);

    let f5 = fig5::compute(&lib).unwrap();
    assert!(f5.render().contains("chiplet"));

    let f6 = fig6::compute(&lib).unwrap();
    assert!(f6.render().contains("normalized to SoC RE"));

    let f8 = fig8::compute(&lib).unwrap();
    assert!(f8.render().contains("SCMS"));

    let f9 = fig9::compute(&lib).unwrap();
    assert!(f9.render().contains("OCME"));

    let f10 = fig10::compute(&lib).unwrap();
    assert!(f10.render().contains("FSMC"));
}

/// Every check of every figure collected at once — the exact content of
/// EXPERIMENTS.md's verdict column.
#[test]
fn complete_claim_inventory_holds() {
    let lib = TechLibrary::paper_defaults().unwrap();
    let mut all: Vec<ShapeCheck> = Vec::new();
    all.extend(fig2::compute(&lib).unwrap().checks());
    all.extend(fig4::compute(&lib).unwrap().checks());
    all.extend(fig5::compute(&lib).unwrap().checks());
    all.extend(fig6::compute(&lib).unwrap().checks());
    all.extend(fig8::compute(&lib).unwrap().checks());
    all.extend(fig9::compute(&lib).unwrap().checks());
    all.extend(fig10::compute(&lib).unwrap().checks());
    assert!(
        all.len() >= 30,
        "expected a rich claim inventory, got {}",
        all.len()
    );
    assert_all_pass("all figures", &all);
}
