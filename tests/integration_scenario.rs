//! Integration tests of the scenario subsystem against the full stack:
//! the bundled `examples/scenarios/` files must reproduce the
//! `actuary-figures` reproductions to 1e-9 *through the scenario path*
//! (file → parser → schema → engines), the `extends` overlay must change
//! only the cells it names, and a library serialized to scenario form must
//! round-trip to a byte-identical exploration CSV.

use chiplet_actuary::dse::portfolio::explore_portfolio;
use chiplet_actuary::figures::{fig10, fig2, fig6, fig8, fig9};
use chiplet_actuary::prelude::reuse::{OcmeSpec, ScmsSpec};
use chiplet_actuary::prelude::*;
use chiplet_actuary::scenario::{library_to_scenario, CostRow, Scenario, ScenarioRun};

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
        "{what}: scenario {a} vs anchor {b}"
    );
}

fn run_scenario(file: &str) -> ScenarioRun {
    let path = format!("{}/examples/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Scenario::from_toml(&text)
        .unwrap_or_else(|e| panic!("{path}: {e}"))
        .run(2)
        .unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn row<'a>(run: &'a ScenarioRun, job: &str, system: &str) -> &'a CostRow {
    run.cost_rows
        .iter()
        .find(|r| r.job == job && r.system == system)
        .unwrap_or_else(|| panic!("missing row {job}/{system}"))
}

#[test]
fn fig8_scenario_reproduces_the_figure_anchors() {
    let lib = lib();
    let run = run_scenario("fig8.toml");
    let fig = fig8::compute(&lib).unwrap();
    // Figure 8 normalizes to the RE of the 4X MCM system; reconstruct the
    // basis from the same spec the figure module uses (the scenario crate
    // itself carries zero figure data).
    let basis = ScmsSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("4X")
        .unwrap()
        .re()
        .total()
        .usd();

    let variants = [
        ("soc", fig8::Fig8Variant::Soc, "-soc"),
        ("mcm", fig8::Fig8Variant::Mcm, ""),
        ("mcm-pkg-reuse", fig8::Fig8Variant::McmPackageReuse, ""),
        ("2.5d", fig8::Fig8Variant::TwoPointFiveD, ""),
        (
            "2.5d-pkg-reuse",
            fig8::Fig8Variant::TwoPointFiveDPackageReuse,
            "",
        ),
    ];
    for m in [1u32, 2, 4] {
        for (job, variant, suffix) in &variants {
            let r = row(&run, job, &format!("{m}X{suffix}"));
            let cell = fig.cell(m, *variant).unwrap();
            close(
                r.per_unit_usd,
                cell.total() * basis,
                &format!("{m}X {job} total"),
            );
            close(r.re_usd, cell.re_norm * basis, &format!("{m}X {job} RE"));
            close(
                r.nre_chips_usd,
                cell.nre_chips_norm * basis,
                &format!("{m}X {job} chip NRE"),
            );
            close(
                r.nre_packages_usd,
                cell.nre_packages_norm * basis,
                &format!("{m}X {job} package NRE"),
            );
        }
    }
}

#[test]
fn fig9_scenario_reproduces_the_figure_anchors() {
    let lib = lib();
    let run = run_scenario("fig9.toml");
    let fig = fig9::compute(&lib).unwrap();
    let basis = OcmeSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("C+2X+2Y")
        .unwrap()
        .re()
        .total()
        .usd();

    let variants = [
        ("soc", fig9::Fig9Variant::Soc, "-soc"),
        ("mcm", fig9::Fig9Variant::Mcm, ""),
        ("mcm-pkg-reuse", fig9::Fig9Variant::McmPackageReuse, ""),
        (
            "mcm-pkg-reuse-hetero",
            fig9::Fig9Variant::McmPackageReuseHetero,
            "",
        ),
    ];
    for system in fig9::SYSTEMS {
        for (job, variant, suffix) in &variants {
            let r = row(&run, job, &format!("{system}{suffix}"));
            let cell = fig.cell(system, *variant).unwrap();
            close(
                r.per_unit_usd,
                cell.total() * basis,
                &format!("{system} {job} total"),
            );
            close(
                r.re_usd,
                cell.re_norm * basis,
                &format!("{system} {job} RE"),
            );
        }
    }
}

#[test]
fn fig10_scenario_reproduces_the_figure_averages() {
    let lib = lib();
    let run = run_scenario("fig10.toml");
    let fig = fig10::compute(&lib).unwrap();
    // Basis: the SoC average of the first situation — recomputed from the
    // scenario's own rows (the figure normalizes every bar to it).
    let average = |job: &str| {
        let rows: Vec<&CostRow> = run.cost_rows.iter().filter(|r| r.job == job).collect();
        assert!(!rows.is_empty(), "job {job} must produce rows");
        rows.iter().map(|r| r.per_unit_usd).sum::<f64>() / rows.len() as f64
    };
    let basis = average("k2n2-soc");

    for (k, n) in fig10::SITUATIONS {
        for (kind, label) in [
            (IntegrationKind::Soc, "soc"),
            (IntegrationKind::Mcm, "mcm"),
            (IntegrationKind::TwoPointFiveD, "2.5d"),
        ] {
            let bar = fig.cell(k, n, kind).unwrap();
            close(
                average(&format!("k{k}n{n}-{label}")),
                bar.total() * basis,
                &format!("k={k} n={n} {label} average"),
            );
        }
    }
}

#[test]
fn fig6_scenario_reproduces_the_figure_anchors() {
    let lib = lib();
    let run = run_scenario("fig6.toml");
    let fig = fig6::compute(&lib).unwrap();
    for node in fig6::NODES {
        for quantity in fig6::QUANTITIES {
            let qlabel = if quantity < 1_000_000 {
                format!("q{}k", quantity / 1_000)
            } else {
                format!("q{}m", quantity / 1_000_000)
            };
            // The node's SoC RE is the figure's (quantity-independent)
            // normalization basis, and it is one of the scenario's own rows.
            let basis = row(&run, &format!("{node}-{qlabel}-soc"), "soc").re_usd;
            for (kind, system) in [
                (IntegrationKind::Soc, "soc"),
                (IntegrationKind::Mcm, "mcm"),
                (IntegrationKind::Info, "info"),
                (IntegrationKind::TwoPointFiveD, "2.5d"),
            ] {
                let job = format!("{node}-{qlabel}-{system}");
                let r = row(&run, &job, system);
                let cell = fig.cell(node, quantity, kind).unwrap();
                close(
                    r.per_unit_usd,
                    cell.total() * basis,
                    &format!("{job} {system} total"),
                );
                close(
                    r.re_usd,
                    cell.re_norm * basis,
                    &format!("{job} {system} RE"),
                );
            }
        }
    }
}

#[test]
fn fig2_scenario_reproduces_the_figure_rows() {
    let lib = lib();
    let run = run_scenario("fig2.toml");
    let fig = fig2::compute(&lib).unwrap();
    assert_eq!(run.yield_rows.len(), fig.rows.len());
    let label_of = |tech: &str| match tech {
        "InFO-interposer" => "RDL".to_string(),
        "2.5D-interposer" => "SI".to_string(),
        other => other.to_string(),
    };
    for r in &run.yield_rows {
        let label = label_of(&r.tech);
        let anchor = fig
            .rows
            .iter()
            .find(|a| a.tech == label && a.area_mm2 == r.area_mm2)
            .unwrap_or_else(|| panic!("no Figure 2 row for {label} at {}", r.area_mm2));
        close(
            r.yield_frac,
            anchor.yield_frac,
            &format!("{label} {} yield", r.area_mm2),
        );
        close(
            r.cost_per_area_norm,
            anchor.cost_per_area_norm,
            &format!("{label} {} norm cost", r.area_mm2),
        );
    }
}

#[test]
fn fig4_sweep_scenario_reproduces_the_figure_to_1e9() {
    let lib = lib();
    let run = run_scenario("fig4-sweep.toml");
    let fig = chiplet_actuary::figures::fig4::compute(&lib).unwrap();
    assert_eq!(run.sweeps.len(), 3);
    for (sweep_run, node) in run.sweeps.iter().zip(["14nm", "7nm", "5nm"]) {
        assert_eq!(sweep_run.name, format!("re-{node}-2c"));
        let sweep = &sweep_run.sweep;
        // The figure normalizes each panel to the node's 100 mm² SoC; the
        // sweep reports raw dollars, so the basis is computed directly
        // from the model (the scenario crate carries zero figure data).
        let n = lib.node(node).unwrap();
        let basis = re_cost(
            &[DiePlacement::new(n, Area::from_mm2(100.0).unwrap(), 1)],
            lib.packaging(IntegrationKind::Soc).unwrap(),
            AssemblyFlow::ChipLast,
        )
        .unwrap()
        .total()
        .usd();
        for (kind, series) in [
            (IntegrationKind::Soc, "SoC"),
            (IntegrationKind::Mcm, "MCM"),
            (IntegrationKind::Info, "InFO"),
            (IntegrationKind::TwoPointFiveD, "2.5D"),
        ] {
            let values = sweep.series_values(series).unwrap();
            assert_eq!(values.len(), 9);
            for (area, value) in values {
                let cell = fig.cell(node, 2, kind, area).unwrap();
                close(
                    value,
                    cell.total() * basis,
                    &format!("{node} {series} at {area} mm²"),
                );
            }
        }
    }
}

#[test]
fn scenario_artifacts_cover_every_selected_surface() {
    // wafer-price-override selects all four explore outputs; the artifact
    // stream must carry them in order, named for the output files.
    let run = run_scenario("wafer-price-override.toml");
    let artifacts = run.artifacts();
    let names: Vec<&str> = artifacts.iter().map(|a| a.name()).collect();
    assert_eq!(
        names,
        [
            "grid-grid",
            "grid-winners",
            "grid-pareto",
            "grid-pareto_program"
        ]
    );
    // The grid artifact is byte-identical to the engine's own emission —
    // the scenario layer only renames it.
    let direct = run.explores[0].result.grid_artifact().csv();
    let first = run.artifacts().remove(0);
    assert_eq!(first.csv(), direct);
}

#[test]
fn wafer_price_override_changes_only_the_named_node() {
    let run = run_scenario("wafer-price-override.toml");
    assert_eq!(run.explores.len(), 1);
    let overridden = &run.explores[0].result;
    // The preset run over the *same* space.
    let preset = explore_portfolio(&lib(), overridden.space(), 2).unwrap();
    assert_eq!(preset.len(), overridden.len());
    let mut seven_nm_diffs = 0usize;
    for (p, o) in preset.cells().iter().zip(overridden.cells()) {
        assert_eq!(p.node, o.node);
        assert_eq!(p.area_mm2, o.area_mm2);
        let (Some(pc), Some(oc)) = (p.outcome.candidate(), o.outcome.candidate()) else {
            assert_eq!(p.outcome, o.outcome, "non-feasible outcomes must agree");
            continue;
        };
        if p.node == "7nm" {
            // The wafer price rose from $9,346 to $11,500: every feasible
            // 7nm cell must get strictly more expensive.
            assert!(
                oc.per_unit > pc.per_unit,
                "7nm cell {p:?} must become more expensive"
            );
            seven_nm_diffs += 1;
        } else {
            assert_eq!(pc, oc, "cells of untouched nodes must be bit-identical");
        }
    }
    assert!(
        seven_nm_diffs > 0,
        "the grid must contain feasible 7nm cells"
    );
}

#[test]
fn serialized_library_round_trips_to_byte_identical_exploration_csv() {
    let lib = lib();
    let toml = library_to_scenario("roundtrip", &lib);
    let scenario = Scenario::from_toml(&format!(
        concat!(
            "{}\n",
            "[explore]\n",
            "name = \"grid\"\n",
            "nodes = [\"14nm\", \"7nm\", \"5nm\"]\n",
            "areas_mm2 = [200.0, 400.0, 800.0]\n",
            "quantities = [500000, 2000000]\n",
            "integrations = [\"soc\", \"mcm\", \"info\", \"2.5d\"]\n",
            "chiplets = [1, 2, 3]\n",
            "schemes = [\"none\", \"scms\", \"ocme\", \"fsmc\"]\n",
        ),
        toml
    ))
    .unwrap();
    // The reconstructed library is *exactly* the preset one...
    assert_eq!(scenario.library, lib);
    // ...so the exploration CSV through the scenario path is byte-identical
    // to the preset path.
    let run = scenario.run(2).unwrap();
    let direct = explore_portfolio(&lib, run.explores[0].result.space(), 2).unwrap();
    assert_eq!(
        run.explores[0].result.grid_artifact().csv(),
        direct.grid_artifact().csv()
    );
}

#[test]
fn run_shared_is_byte_identical_and_reuses_cores_across_runs() {
    use chiplet_actuary::dse::portfolio::SharedCoreCache;
    use chiplet_actuary::scenario::canon::library_digest;
    use chiplet_actuary::scenario::toml::parse;

    let path = format!(
        "{}/examples/scenarios/custom-node.toml",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = parse(&text).unwrap();
    let scenario = Scenario::from_doc(&doc).unwrap();
    let tag = library_digest(&doc).bytes();

    let reference = scenario.run(2).unwrap();
    let cache = SharedCoreCache::new(4096);
    let cold = scenario.run_shared(2, &cache, tag).unwrap();
    let warm = scenario.run_shared(2, &cache, tag).unwrap();

    // Every artifact of every run renders byte-identically: the cache only
    // short-circuits the quantity-independent core evaluations.
    let render = |run: &ScenarioRun| -> Vec<String> {
        run.artifacts().into_iter().map(|a| a.csv()).collect()
    };
    assert_eq!(render(&cold), render(&reference));
    assert_eq!(render(&warm), render(&reference));

    // The warm run answered every explore core from the cache.
    for (c, w) in cold.explores.iter().zip(&warm.explores) {
        assert!(c.result.core_evaluations() > 0);
        assert_eq!(w.result.core_evaluations(), 0, "{}", w.name);
    }

    // A different library tag is invisible to the warm cores.
    let other = scenario.run_shared(2, &cache, [0xAB; 32]).unwrap();
    for (c, o) in cold.explores.iter().zip(&other.explores) {
        assert_eq!(o.result.core_evaluations(), c.result.core_evaluations());
    }
}

/// A scenario exercising incremental delivery: a yield table ahead of a
/// refine-mode explore job with a real 2-D grid and multiple surfaces.
const STREAMED_SCENARIO: &str = concat!(
    "name = \"streamed\"\n",
    "[[yield]]\n",
    "name = \"y\"\n",
    "techs = [\"7nm\"]\n",
    "areas_mm2 = [100, 200]\n",
    "[explore]\n",
    "name = \"job\"\n",
    "nodes = [\"7nm\"]\n",
    "areas_mm2 = [90, 180, 270, 360, 450, 540, 630, 720]\n",
    "quantities = [750000, 1500000, 2250000, 3000000, 3750000, 4500000, \
     5250000, 6000000, 6750000, 7500000, 8250000, 9000000]\n",
    "integrations = [\"soc\", \"mcm\", \"info\", \"2.5d\"]\n",
    "chiplets = [1, 2, 3]\n",
    "mode = \"refine\"\n",
    "quantity_stride = 4\n",
    "outputs = [\"grid\", \"winners\", \"pareto\"]\n",
);

/// Records every streamed segment as (artifact name, continuation, CSV
/// text) — header-bearing for opening segments, rows-only otherwise,
/// exactly as a serializing consumer would render them.
struct Collect {
    segments: Vec<(String, bool, String)>,
}

impl chiplet_actuary::scenario::StreamSink for Collect {
    fn segment(
        &mut self,
        artifact: chiplet_actuary::report::Artifact<'_>,
        continuation: bool,
    ) -> bool {
        let name = artifact.name().to_string();
        let mut text = String::new();
        if continuation {
            artifact.write_csv_rows_to(&mut text).unwrap();
        } else {
            artifact.write_csv_to(&mut text).unwrap();
        }
        self.segments.push((name, continuation, text));
        true
    }
}

#[test]
fn run_streamed_segments_reassemble_to_the_batch_run_byte_for_byte() {
    let scenario = Scenario::from_toml(STREAMED_SCENARIO).unwrap();
    let batch = scenario.run(2).unwrap();
    let mut sink = Collect {
        segments: Vec::new(),
    };
    let streamed = scenario.run_streamed(2, &mut sink).unwrap();

    // The returned run is the same run: every artifact renders
    // byte-identically to the batch path.
    let render = |run: &ScenarioRun| -> Vec<String> {
        run.artifacts().into_iter().map(|a| a.csv()).collect()
    };
    assert_eq!(render(&streamed), render(&batch));

    // Delivery order: the yield table, the streamed grid (opening
    // segment, then rows-only continuations), then the remaining
    // surfaces as whole artifacts.
    let names: Vec<(&str, bool)> = sink
        .segments
        .iter()
        .map(|(n, c, _)| (n.as_str(), *c))
        .collect();
    assert_eq!(names[0], ("yields", false));
    assert_eq!(names[1], ("job-grid", false));
    let n = names.len();
    assert_eq!(names[n - 2], ("job-winners", false));
    assert_eq!(names[n - 1], ("job-pareto", false));
    let grid: Vec<&(String, bool, String)> = sink
        .segments
        .iter()
        .filter(|(name, _, _)| name == "job-grid")
        .collect();
    assert!(
        grid.len() >= 3,
        "coarse, at least one refinement phase, and the residual: got {}",
        grid.len()
    );
    assert!(grid[1..].iter().all(|(_, c, _)| *c), "continuations only");
    assert_eq!(
        n,
        grid.len() + 3,
        "nothing besides yields/grid/winners/pareto may be delivered"
    );

    // The streamed-grid contract: the opening segment carries the
    // header, every segment is internally grid-ordered, every cell
    // appears exactly once, and re-sorting the concatenated rows by
    // grid position reproduces the batch grid byte for byte.
    let batch_grid = batch.explores[0].result.grid_artifact().csv();
    let batch_lines: Vec<&str> = batch_grid.lines().collect();
    let header = batch_lines[0];
    let position: std::collections::BTreeMap<&str, usize> = batch_lines[1..]
        .iter()
        .enumerate()
        .map(|(i, line)| (*line, i))
        .collect();
    assert_eq!(position.len(), batch_lines.len() - 1, "rows must be unique");
    let mut streamed_rows: Vec<(usize, &str)> = Vec::new();
    for (i, (_, _, text)) in grid.iter().enumerate() {
        let mut lines = text.lines();
        if i == 0 {
            assert_eq!(lines.next(), Some(header));
        }
        let mut previous = None;
        for line in lines {
            let at = *position
                .get(line)
                .unwrap_or_else(|| panic!("streamed a row the batch grid lacks: {line}"));
            assert!(
                previous.is_none_or(|p| p < at),
                "segment {i} must be internally grid-ordered"
            );
            previous = Some(at);
            streamed_rows.push((at, line));
        }
    }
    assert_eq!(streamed_rows.len(), position.len(), "each row exactly once");
    streamed_rows.sort_unstable_by_key(|(at, _)| *at);
    let mut reassembled = format!("{header}\n");
    for (_, line) in streamed_rows {
        reassembled.push_str(line);
        reassembled.push('\n');
    }
    assert_eq!(reassembled, batch_grid);
}

#[test]
fn a_declining_stream_sink_aborts_the_run() {
    /// Accepts `budget` segments, then declines.
    struct Stop {
        budget: usize,
    }
    impl chiplet_actuary::scenario::StreamSink for Stop {
        fn segment(&mut self, _: chiplet_actuary::report::Artifact<'_>, _: bool) -> bool {
            let go = self.budget > 0;
            self.budget = self.budget.saturating_sub(1);
            go
        }
    }
    let scenario = Scenario::from_toml(STREAMED_SCENARIO).unwrap();
    // Declining the very first segment and declining mid-grid must both
    // surface as an engine error naming the job, not a silent success.
    for budget in [0, 2] {
        let err = scenario
            .run_streamed(2, &mut Stop { budget })
            .expect_err("a declined delivery must abort the run");
        let text = err.to_string();
        assert!(
            text.contains("declined") || text.contains("aborted"),
            "{text}"
        );
    }
}

#[test]
fn hetero_scenario_exposes_the_flow_comparison() {
    let run = run_scenario("hetero-portfolio.toml");
    let last = row(&run, "chip-last", "server-64c");
    let first = row(&run, "chip-first", "server-64c");
    // §5: chip-last avoids wasting known-good dies on interposer defects.
    assert!(
        last.per_unit_usd < first.per_unit_usd,
        "chip-last must beat chip-first on the 2.5D server part"
    );
    // The MCM desktop part prices identically under both flows (Eq. 5).
    let d_last = row(&run, "chip-last", "desktop-16c");
    let d_first = row(&run, "chip-first", "desktop-16c");
    close(
        d_last.per_unit_usd,
        d_first.per_unit_usd,
        "desktop flow parity",
    );
    // Heterogeneous nodes in one package: the rows exist and priced > 0.
    assert!(last.per_unit_usd > 0.0 && d_last.per_unit_usd > 0.0);
}

#[test]
fn custom_node_scenario_runs_on_the_declared_node() {
    let run = run_scenario("custom-node.toml");
    assert_eq!(run.cost_rows.len(), 3); // SCMS 1X/2X/4X on the 4nm node
    assert!(run.cost_rows.iter().all(|r| r.per_unit_usd > 0.0));
    let grid = &run.explores[0].result;
    // The non-preset node participates in the grid like any preset node.
    assert!(grid
        .feasible()
        .any(|c| c.node == "4nm" && c.scheme_params == "k=4,n=4"));
}
