//! Deep integration tests of the §5 reuse schemes: quantitative sharing
//! arithmetic that the figure-level shape checks do not pin down.

use chiplet_actuary::arch::reuse::{
    binomial, fsmc_system_count, multiset_count, multisets, FsmcSpec, OcmeSpec, ScmsSpec,
};
use chiplet_actuary::arch::NreEntityKind;
use chiplet_actuary::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

/// With three SCMS systems of equal quantity sharing one package design,
/// each gets exactly a third of the package NRE — so the 4X system's share
/// falls by exactly two-thirds vs owning the design. The paper's "the NRE
/// cost of the package will be reduced by two-thirds" is exact arithmetic.
#[test]
fn scms_package_reuse_is_exactly_two_thirds_for_equal_quantities() {
    let lib = lib();
    let own = ScmsSpec::paper_example().unwrap();
    let mut shared = ScmsSpec::paper_example().unwrap();
    shared.package_reuse = true;

    let own_cost = own
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let shared_cost = shared
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();

    // The shared design is sized for the 4X system, so the 4X system's
    // own-design NRE equals the shared design's total cost.
    let own_4x = own_cost.system("4X").unwrap().nre_per_unit().packages;
    let shared_4x = shared_cost.system("4X").unwrap().nre_per_unit().packages;
    let ratio = shared_4x.usd() / own_4x.usd();
    assert!(
        (ratio - 1.0 / 3.0).abs() < 1e-9,
        "4X package NRE share must fall to exactly 1/3, got {ratio}"
    );
}

/// Chiplet NRE allocation follows usage: the 4X system uses 4 of the 7
/// chiplet instances across the portfolio, so it carries 4/7 of the chip
/// design cost.
#[test]
fn scms_chip_allocation_follows_usage() {
    let lib = lib();
    let cost = ScmsSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let chip_entity = cost
        .entities()
        .iter()
        .find(|e| e.kind() == NreEntityKind::Chip)
        .unwrap();
    let total = chip_entity.cost().usd();
    let q = 500_000.0;
    // Per-unit × quantity = absolute share; 1X + 2X + 4X uses = 7.
    for (system, uses) in [("1X", 1.0), ("2X", 2.0), ("4X", 4.0)] {
        let per_unit = chip_entity.allocation_for(system).usd();
        let absolute = per_unit * q;
        let expected = total * uses / 7.0;
        assert!(
            (absolute - expected).abs() < 1.0,
            "{system}: {absolute} vs expected {expected}"
        );
    }
}

/// The SCMS SoC baseline pays three chip designs (one per grade) but only
/// one module design — chip entities 3, module entities 1.
#[test]
fn scms_soc_baseline_entity_structure() {
    let lib = lib();
    let cost = ScmsSpec::paper_example()
        .unwrap()
        .soc_portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let chips = cost
        .entities()
        .iter()
        .filter(|e| e.kind() == NreEntityKind::Chip)
        .count();
    let modules = cost
        .entities()
        .iter()
        .filter(|e| e.kind() == NreEntityKind::Module)
        .count();
    let d2d = cost
        .entities()
        .iter()
        .filter(|e| e.kind() == NreEntityKind::D2d)
        .count();
    assert_eq!(chips, 3, "one SoC die per grade");
    assert_eq!(modules, 1, "the 200mm² module is designed once");
    assert_eq!(d2d, 0, "monolithic SoCs need no D2D");
}

/// OCME with a heterogeneous (14 nm) center adds a second D2D design (one
/// per node) — Eq. (8)'s per-node D2D term.
#[test]
fn ocme_heterogeneous_pays_two_d2d_designs() {
    let lib = lib();
    let mut spec = OcmeSpec::paper_example().unwrap();
    let homo = spec
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    spec.center_node = Some(NodeId::new("14nm"));
    let hetero = spec
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();

    let d2d_count = |cost: &PortfolioCost| {
        cost.entities()
            .iter()
            .filter(|e| e.kind() == NreEntityKind::D2d)
            .count()
    };
    assert_eq!(d2d_count(&homo), 1);
    assert_eq!(d2d_count(&hetero), 2);

    let d2d_7 = d2d_nre_of(&lib, "7nm");
    let d2d_14 = d2d_nre_of(&lib, "14nm");
    assert!((hetero.nre_total().d2d.usd() - (d2d_7 + d2d_14)).abs() < 1.0);
}

fn d2d_nre_of(lib: &TechLibrary, node: &str) -> f64 {
    lib.node(node).unwrap().d2d().nre_cost().usd()
}

/// The heterogeneous center die is cheaper to manufacture *and* design
/// (mature wafers, mature NRE) when its modules are unscalable.
#[test]
fn ocme_heterogeneous_center_economics() {
    let lib = lib();
    let mut spec = OcmeSpec::paper_example().unwrap();
    let homo = spec
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    spec.center_node = Some(NodeId::new("14nm"));
    let hetero = spec
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();

    // RE of the C-only system falls (cheaper wafer at the same area).
    let re_homo = homo.system("C").unwrap().re().total();
    let re_hetero = hetero.system("C").unwrap().re().total();
    assert!(re_hetero < re_homo);

    // Module + chip NRE fall as well.
    assert!(hetero.nre_total().modules < homo.nre_total().modules);
    assert!(hetero.nre_total().chips < homo.nre_total().chips);
}

/// FSMC combinatorics: enumeration matches the closed formulas everywhere,
/// and every generated collocation is a valid multiset.
#[test]
fn fsmc_combinatorics_are_exact() {
    for types in 1..=6u32 {
        for size in 1..=4u32 {
            let sets = multisets(types, size);
            assert_eq!(sets.len() as u64, multiset_count(types, size));
            for counts in &sets {
                assert_eq!(counts.len(), types as usize);
                assert_eq!(counts.iter().sum::<u32>(), size);
            }
            // No duplicates.
            let mut sorted = sets.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), sets.len());
        }
    }
    assert_eq!(binomial(9, 4), 126);
    assert_eq!(fsmc_system_count(6, 4), 209);
}

/// FSMC portfolios build exactly the advertised number of systems and the
/// whole family shares one package design and n chip designs.
#[test]
fn fsmc_portfolio_entity_structure() {
    let lib = lib();
    let spec = FsmcSpec::paper_example(3, 4).unwrap();
    let portfolio = spec.portfolio().unwrap();
    assert_eq!(portfolio.len() as u64, spec.system_count());
    let cost = portfolio.cost(&lib, AssemblyFlow::ChipLast).unwrap();
    let packages = cost
        .entities()
        .iter()
        .filter(|e| e.kind() == NreEntityKind::Package)
        .count();
    let chips = cost
        .entities()
        .iter()
        .filter(|e| e.kind() == NreEntityKind::Chip)
        .count();
    assert_eq!(packages, 1, "one shared k-socket package design");
    assert_eq!(chips, 4, "one design per chiplet type");
}

/// The FSMC single-chiplet collocations pay the oversized shared package —
/// their RE exceeds what a right-sized package would cost.
#[test]
fn fsmc_small_collocations_pay_for_the_big_package() {
    let lib = lib();
    let spec = FsmcSpec::paper_example(4, 4).unwrap();
    let cost = spec
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    // "1A" (one chiplet) vs "4A" (four chiplets): same die design; the
    // package materials dominate the difference in raw package cost.
    let one = cost.system("1A").unwrap().re();
    let four = cost.system("4A").unwrap().re();
    assert!(one.raw_chips < four.raw_chips);
    // Same package sizing basis: raw package costs differ only by bond
    // count (3 extra bonds at $0.50).
    let delta = four.raw_package.usd() - one.raw_package.usd();
    assert!(
        (delta - 1.5).abs() < 1e-6,
        "package material difference should be 3 bonds, got {delta}"
    );
}

/// Reuse benefit grows with the number of systems sharing: FSMC average
/// NRE per unit decreases monotonically along the paper's five situations.
#[test]
fn fsmc_nre_amortization_monotone_across_situations() {
    let lib = lib();
    let mut last = f64::INFINITY;
    for (k, n) in [(2u32, 2u32), (2, 4), (3, 4), (4, 4), (4, 6)] {
        let spec = FsmcSpec::paper_example(k, n).unwrap();
        let cost = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let avg_nre: f64 = cost
            .systems()
            .iter()
            .map(|s| s.nre_per_unit().total().usd())
            .sum::<f64>()
            / cost.systems().len() as f64;
        assert!(
            avg_nre <= last + 1e-9,
            "(k={k},n={n}): avg NRE {avg_nre} rose above {last}"
        );
        last = avg_nre;
    }
}
