//! Integration tests of the design-space-exploration layer against the
//! full model stack: the optimizer, the crossover finders, sensitivity and
//! the maturity ramp must tell one consistent story.

use chiplet_actuary::dse::crossover::find_area_crossover;
use chiplet_actuary::dse::maturity::{library_at_age, DefectRamp};
use chiplet_actuary::dse::optimizer::{evaluate_candidate, recommend, SearchSpace};
use chiplet_actuary::dse::pareto::pareto_min_indices;
use chiplet_actuary::dse::sensitivity::elasticity;
use chiplet_actuary::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

/// The optimizer's RE-driven preference at huge volume must agree with the
/// explicit area-crossover finder: below the crossover the SoC wins, above
/// it the 2-chiplet MCM wins.
#[test]
fn optimizer_agrees_with_crossover_finder() {
    let lib = lib();
    let node = lib.node("5nm").unwrap();
    let soc_pkg = lib.packaging(IntegrationKind::Soc).unwrap();
    let mcm_pkg = lib.packaging(IntegrationKind::Mcm).unwrap();

    let crossover = find_area_crossover(
        |area| {
            let soc = re_cost(
                &[DiePlacement::new(node, area, 1)],
                soc_pkg,
                AssemblyFlow::ChipLast,
            )?;
            let die = node.d2d().inflate_module_area(area / 2.0)?;
            let mcm = re_cost(
                &[DiePlacement::new(node, die, 2)],
                mcm_pkg,
                AssemblyFlow::ChipLast,
            )?;
            Ok(mcm.total().usd() - soc.total().usd())
        },
        50.0,
        900.0,
        1.0,
    )
    .unwrap()
    .expect("a 5 nm RE crossover exists");

    // Far below: RE-only comparison favours the SoC; far above: the MCM.
    let huge_quantity = Quantity::new(1_000_000_000); // NRE negligible
    let space = SearchSpace {
        chiplet_counts: vec![2],
        integrations: vec![IntegrationKind::Mcm],
        flow: AssemblyFlow::ChipLast,
    };
    let below = recommend(
        &lib,
        "5nm",
        Area::from_mm2(crossover.mm2() * 0.5).unwrap(),
        huge_quantity,
        &space,
    )
    .unwrap();
    assert_eq!(
        below.integration,
        IntegrationKind::Soc,
        "below the crossover: {below}"
    );
    let above = recommend(
        &lib,
        "5nm",
        Area::from_mm2((crossover.mm2() * 2.0).min(900.0)).unwrap(),
        huge_quantity,
        &space,
    )
    .unwrap();
    assert_eq!(
        above.integration,
        IntegrationKind::Mcm,
        "above the crossover: {above}"
    );
}

/// Chiplets hedge yield risk: the elasticity of RE cost with respect to
/// defect density is markedly lower for the 2-chiplet MCM than for the
/// monolithic SoC at the same module area.
#[test]
fn chiplets_reduce_defect_density_elasticity() {
    let base = lib();
    let module_area = Area::from_mm2(800.0).unwrap();
    let cost_at = |d: f64, chiplets: u32| -> Result<f64, chiplet_actuary::arch::ArchError> {
        let snapshot = base.with_modified_node("5nm", |n| {
            ProcessNode::builder(n.id().clone())
                .defect_density(d)
                .cluster(n.cluster())
                .wafer_price(n.wafer_price())
                .k_module(n.nre().k_module)
                .k_chip(n.nre().k_chip)
                .mask_set(n.nre().mask_set)
                .ip_license(n.nre().ip_license)
                .relative_density(n.relative_density())
                .d2d(*n.d2d())
                .build()
        })?;
        let node = snapshot.node("5nm")?;
        let (placements, kind) = if chiplets > 1 {
            let die = node
                .d2d()
                .inflate_module_area(module_area / chiplets as f64)?;
            (
                vec![DiePlacement::new(node, die, chiplets)],
                IntegrationKind::Mcm,
            )
        } else {
            (
                vec![DiePlacement::new(node, module_area, 1)],
                IntegrationKind::Soc,
            )
        };
        Ok(re_cost(
            &placements,
            snapshot.packaging(kind)?,
            AssemblyFlow::ChipLast,
        )?
        .total()
        .usd())
    };
    let soc_elasticity = elasticity(0.11, 0.01, |d| cost_at(d, 1)).unwrap();
    let mcm_elasticity = elasticity(0.11, 0.01, |d| cost_at(d, 2)).unwrap();
    assert!(
        mcm_elasticity < 0.7 * soc_elasticity,
        "splitting must hedge defect risk: SoC {soc_elasticity:.3} vs MCM {mcm_elasticity:.3}"
    );
    assert!(
        soc_elasticity > 0.5,
        "a big 5 nm die must be yield-dominated"
    );
}

/// Process maturity flips the optimizer's decision: a 500 mm² 7 nm system
/// at volume wants chiplets on launch-day yield but goes monolithic once
/// the process matures.
#[test]
fn maturity_flips_the_partitioning_decision() {
    let base = lib();
    let ramp = DefectRamp::new(0.15, 0.04, 12.0).unwrap();
    let space = SearchSpace {
        chiplet_counts: vec![2, 3],
        integrations: vec![IntegrationKind::Mcm],
        flow: AssemblyFlow::ChipLast,
    };
    // Enormous volume: the decision is RE-driven.
    let quantity = Quantity::new(1_000_000_000);
    let area = Area::from_mm2(500.0).unwrap();

    let early = library_at_age(&base, "7nm", &ramp, 0.0).unwrap();
    let early_rec = recommend(&early, "7nm", area, quantity, &space).unwrap();
    assert!(
        early_rec.chiplets >= 2,
        "launch-day yield must favour chiplets: {early_rec}"
    );

    let mature = library_at_age(&base, "7nm", &ramp, 60.0).unwrap();
    let mature_rec = recommend(&mature, "7nm", area, quantity, &space).unwrap();
    assert_eq!(
        mature_rec.integration,
        IntegrationKind::Soc,
        "mature yield must favour the monolithic die: {mature_rec}"
    );
}

/// The candidate list forms a meaningful (chiplets, cost) trade-off: the
/// Pareto frontier over (chiplet count, per-unit cost) keeps the cheapest
/// configuration and drops dominated ones.
#[test]
fn candidate_pareto_frontier_is_consistent() {
    let lib = lib();
    let rec = recommend(
        &lib,
        "5nm",
        Area::from_mm2(800.0).unwrap(),
        Quantity::new(5_000_000),
        &SearchSpace::default(),
    )
    .unwrap();
    let points: Vec<(f64, f64)> = rec
        .candidates
        .iter()
        .map(|c| (c.chiplets as f64, c.per_unit.usd()))
        .collect();
    let frontier = pareto_min_indices(&points);
    assert!(!frontier.is_empty());
    // The overall winner appears on the frontier.
    let winner_idx = rec
        .candidates
        .iter()
        .position(|c| c.per_unit == rec.per_unit)
        .unwrap();
    assert!(
        frontier.contains(&winner_idx),
        "the cheapest candidate must be Pareto-optimal"
    );
}

/// Candidate evaluation is deterministic and matches a hand-built system.
#[test]
fn evaluate_candidate_matches_manual_portfolio() {
    let lib = lib();
    let quantity = Quantity::new(2_000_000);
    let area = Area::from_mm2(600.0).unwrap();
    let candidate = evaluate_candidate(
        &lib,
        "7nm",
        area,
        quantity,
        IntegrationKind::Mcm,
        3,
        AssemblyFlow::ChipLast,
    )
    .unwrap();

    let chips = partition::equal_chiplets("opt", "7nm", area, 3).unwrap();
    let mut builder = System::builder("opt-sys", IntegrationKind::Mcm).quantity(quantity);
    for chip in chips {
        builder = builder.chip(chip, 1);
    }
    let manual = Portfolio::new(vec![builder.build().unwrap()])
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let manual_per_unit = manual.systems()[0].per_unit_total();
    assert!(
        (candidate.per_unit.usd() - manual_per_unit.usd()).abs() < 1e-9,
        "{} vs {}",
        candidate.per_unit,
        manual_per_unit
    );
}
