//! Cross-crate property tests: invariants that must hold for *any* system
//! configuration, not just the paper's.

use chiplet_actuary::prelude::*;
use proptest::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

const NODE_IDS: [&str; 4] = ["5nm", "7nm", "12nm", "14nm"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every feasible configuration yields a non-negative, internally
    /// consistent breakdown, and the total is at least the raw silicon.
    #[test]
    fn re_breakdown_invariants(
        node_idx in 0usize..NODE_IDS.len(),
        mm2 in 30.0f64..700.0,
        count in 1u32..7,
        kind_idx in 0usize..3,
        chip_first in proptest::bool::ANY,
    ) {
        let lib = lib();
        let node = lib.node(NODE_IDS[node_idx]).unwrap();
        let kind = IntegrationKind::MULTI_CHIP[kind_idx];
        let packaging = lib.packaging(kind).unwrap();
        let flow = if chip_first { AssemblyFlow::ChipFirst } else { AssemblyFlow::ChipLast };
        let area = Area::from_mm2(mm2).unwrap();
        let b = re_cost(&[DiePlacement::new(node, area, count)], packaging, flow).unwrap();
        prop_assert!(b.is_non_negative());
        let component_sum: Money = b.components().iter().map(|(_, m)| *m).sum();
        prop_assert!((component_sum.usd() - b.total().usd()).abs() < 1e-6);
        let raw = node.raw_die_cost(area).unwrap() * count as f64;
        prop_assert!(b.total().usd() >= raw.usd());
    }

    /// Splitting a die always improves die-defect cost but adds packaging
    /// cost — both directions of the paper's §4.1 trade-off.
    #[test]
    fn splitting_tradeoff(
        node_idx in 0usize..NODE_IDS.len(),
        mm2 in 200.0f64..800.0,
        n in 2u32..6,
    ) {
        let lib = lib();
        let node = lib.node(NODE_IDS[node_idx]).unwrap();
        let total = Area::from_mm2(mm2).unwrap();
        let soc = re_cost(
            &[DiePlacement::new(node, total, 1)],
            lib.packaging(IntegrationKind::Soc).unwrap(),
            AssemblyFlow::ChipLast,
        ).unwrap();
        let die = node.d2d().inflate_module_area(total / n as f64).unwrap();
        let mcm = re_cost(
            &[DiePlacement::new(node, die, n)],
            lib.packaging(IntegrationKind::Mcm).unwrap(),
            AssemblyFlow::ChipLast,
        ).unwrap();
        prop_assert!(
            mcm.chip_defects.usd() < soc.chip_defects.usd(),
            "defect cost must fall: {} vs {}", mcm.chip_defects, soc.chip_defects
        );
        prop_assert!(
            mcm.packaging_total().usd() > soc.packaging_total().usd(),
            "packaging cost must rise"
        );
    }

    /// Portfolio NRE allocations always recover the entity totals exactly
    /// (no money invented or lost by the sharing machinery).
    #[test]
    fn portfolio_allocation_conserves_money(
        mm2 in 50.0f64..300.0,
        count_a in 1u32..4,
        count_b in 1u32..4,
        qty_a in 100_000u64..2_000_000,
        qty_b in 100_000u64..2_000_000,
        share_chip in proptest::bool::ANY,
    ) {
        let lib = lib();
        let chip = |name: &str| Chip::chiplet(
            name.to_string(),
            "7nm",
            vec![Module::new(format!("{name}-m"), "7nm", Area::from_mm2(mm2).unwrap())],
        );
        let chip_a = chip("shared");
        let chip_b = if share_chip { chip_a.clone() } else { chip("other") };
        let sys_a = System::builder("a", IntegrationKind::Mcm)
            .chip(chip_a, count_a)
            .quantity(Quantity::new(qty_a))
            .build()
            .unwrap();
        let sys_b = System::builder("b", IntegrationKind::Mcm)
            .chip(chip_b, count_b)
            .quantity(Quantity::new(qty_b))
            .build()
            .unwrap();
        let cost = Portfolio::new(vec![sys_a, sys_b])
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();

        // Reconstruct the NRE total from per-system allocations × quantity.
        let recovered: f64 = cost
            .systems()
            .iter()
            .map(|s| s.nre_per_unit().total().usd() * s.quantity().as_f64())
            .sum();
        let total = cost.nre_total().total().usd();
        prop_assert!(
            (recovered - total).abs() <= total * 1e-9 + 1e-3,
            "allocations {recovered} must equal NRE total {total}"
        );
    }

    /// Per-unit total cost is monotone non-increasing in production
    /// quantity (amortization can only help).
    #[test]
    fn per_unit_cost_monotone_in_quantity(
        mm2 in 100.0f64..600.0,
        n in 1u32..4,
        q in 100_000u64..5_000_000,
    ) {
        let lib = lib();
        let per_unit = |quantity: u64| -> f64 {
            let kind = if n == 1 { IntegrationKind::Soc } else { IntegrationKind::Mcm };
            let chips = partition::equal_chiplets(
                "prop", "7nm", Area::from_mm2(mm2).unwrap(), n).unwrap();
            let mut builder = System::builder("prop-sys", kind)
                .quantity(Quantity::new(quantity));
            for chip in chips {
                builder = builder.chip(chip, 1);
            }
            let cost = Portfolio::new(vec![builder.build().unwrap()])
                .cost(&lib, AssemblyFlow::ChipLast)
                .unwrap();
            cost.systems()[0].per_unit_total().usd()
        };
        prop_assert!(per_unit(q * 2) <= per_unit(q) + 1e-9);
    }

    /// The D2D overhead always hurts pure RE: a chiplet die costs more to
    /// manufacture than the bare module area it carries.
    #[test]
    fn d2d_overhead_costs_silicon(
        node_idx in 0usize..NODE_IDS.len(),
        mm2 in 50.0f64..400.0,
    ) {
        let lib = lib();
        let node = lib.node(NODE_IDS[node_idx]).unwrap();
        let bare = Area::from_mm2(mm2).unwrap();
        let inflated = node.d2d().inflate_module_area(bare).unwrap();
        prop_assert!(inflated.mm2() > bare.mm2());
        let bare_cost = node.yielded_die_cost(bare).unwrap();
        let inflated_cost = node.yielded_die_cost(inflated).unwrap();
        prop_assert!(inflated_cost > bare_cost);
    }
}
