//! Integration tests of the portfolio exploration engine against the full
//! model stack: determinism across thread counts, byte-identity of the
//! cached RE core against the evaluate-every-cell reference path, and —
//! the load-bearing part — agreement of the per-scheme grid cells and
//! winners with the `actuary-figures` Fig. 8/9/10 reproductions on their
//! exact operating points.

use chiplet_actuary::dse::explore::{explore_with, ExploreSpace};
use chiplet_actuary::dse::portfolio::{
    explore_portfolio, explore_portfolio_with, CorePolicy, PortfolioSpace, ReuseScheme,
};
use chiplet_actuary::figures::{fig10, fig8, fig9};
use chiplet_actuary::prelude::reuse::{multiset_count, FsmcSpec, OcmeSpec, ScmsSpec};
use chiplet_actuary::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
        "{what}: grid {a} vs anchor {b}"
    );
}

#[test]
fn portfolio_grid_is_deterministic_across_thread_counts() {
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["14nm".to_string(), "7nm".to_string()],
        areas_mm2: vec![160.0, 400.0, 800.0],
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flows: vec![AssemblyFlow::ChipLast, AssemblyFlow::ChipFirst],
        schemes: ReuseScheme::ALL.to_vec(),
        ..PortfolioSpace::default()
    };
    let serial = explore_portfolio(&lib, &space, 1).unwrap();
    assert_eq!(serial.len(), space.len());
    for threads in [2, 3, 8] {
        let parallel = explore_portfolio(&lib, &space, threads).unwrap();
        assert_eq!(serial.cells(), parallel.cells(), "threads={threads}");
        assert_eq!(
            serial.grid_artifact().csv(),
            parallel.grid_artifact().csv(),
            "threads={threads}: the CSV must be byte-identical"
        );
        assert_eq!(
            serial.winners_artifact().csv(),
            parallel.winners_artifact().csv()
        );
    }
    let auto = explore_portfolio(&lib, &space, 0).unwrap();
    assert_eq!(serial.grid_artifact().csv(), auto.grid_artifact().csv());
}

#[test]
fn cached_core_is_byte_identical_and_at_least_halves_the_evaluations() {
    // The acceptance bar of the RE-core cache, asserted with the engine's
    // own evaluation counter on both default grids.
    let lib = lib();

    let single = ExploreSpace::default();
    let cached = explore_with(&lib, &single, 4, CorePolicy::Cached).unwrap();
    let uncached = explore_with(&lib, &single, 4, CorePolicy::Uncached).unwrap();
    assert_eq!(cached.cells(), uncached.cells());
    assert_eq!(cached.grid_artifact().csv(), uncached.grid_artifact().csv());
    assert_eq!(
        cached.winners_artifact().csv(),
        uncached.winners_artifact().csv()
    );
    assert!(
        cached.core_evaluations() * 2 <= uncached.core_evaluations(),
        "single-system grid: {} cached vs {} uncached evaluations",
        cached.core_evaluations(),
        uncached.core_evaluations()
    );
    // The quantity axis has 3 points and nothing else varies per core, so
    // the reduction is exactly 3x on the default grid.
    assert_eq!(cached.core_evaluations() * 3, uncached.core_evaluations());

    let portfolio = PortfolioSpace::default();
    let cached = explore_portfolio_with(&lib, &portfolio, 4, CorePolicy::Cached).unwrap();
    let uncached = explore_portfolio_with(&lib, &portfolio, 4, CorePolicy::Uncached).unwrap();
    assert_eq!(cached.cells(), uncached.cells());
    assert_eq!(cached.grid_artifact().csv(), uncached.grid_artifact().csv());
    assert!(
        cached.core_evaluations() * 2 <= uncached.core_evaluations(),
        "portfolio grid: {} cached vs {} uncached evaluations",
        cached.core_evaluations(),
        uncached.core_evaluations()
    );
}

/// The SCMS anchor grid: member areas 200·m so every cell's chiplet module
/// area is the paper's 200 mm² (7 nm, 500 k units, Figure 8's config).
fn scms_anchor_grid(lib: &TechLibrary) -> chiplet_actuary::dse::portfolio::PortfolioResult {
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![200.0, 400.0, 800.0],
        quantities: vec![500_000],
        integrations: vec![IntegrationKind::Soc, IntegrationKind::Mcm],
        chiplet_counts: vec![1, 2, 4],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Scms],
        ..PortfolioSpace::default()
    };
    explore_portfolio(lib, &space, 2).unwrap()
}

#[test]
fn scms_grid_cells_match_the_fig8_anchors() {
    let lib = lib();
    let result = scms_anchor_grid(&lib);
    let fig = fig8::compute(&lib).unwrap();
    // Figure 8 normalizes to the RE of the 4X MCM system; reconstruct the
    // basis from the same spec the figure module uses.
    let basis = ScmsSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("4X")
        .unwrap()
        .re()
        .total()
        .usd();

    let cells = result.cells();
    for m in [1u32, 2, 4] {
        let area = 200.0 * f64::from(m);
        let grid = |integration: IntegrationKind| {
            cells
                .iter()
                .find(|c| c.area_mm2 == area && c.chiplets == m && c.integration == integration)
                .and_then(|c| c.outcome.candidate())
                .unwrap_or_else(|| panic!("{m}X {integration} cell must be feasible"))
        };
        let mcm = fig.cell(m, fig8::Fig8Variant::Mcm).unwrap();
        close(
            grid(IntegrationKind::Mcm).per_unit.usd(),
            mcm.total() * basis,
            &format!("{m}X MCM total"),
        );
        close(
            grid(IntegrationKind::Mcm).re_per_unit.usd(),
            mcm.re_norm * basis,
            &format!("{m}X MCM RE"),
        );
        let soc = fig.cell(m, fig8::Fig8Variant::Soc).unwrap();
        close(
            grid(IntegrationKind::Soc).per_unit.usd(),
            soc.total() * basis,
            &format!("{m}X SoC total"),
        );
    }
}

#[test]
fn scms_winners_reproduce_the_fig8_takeaway() {
    // §5.1 at grid scale: with the chiplet design shared across 1X/2X/4X,
    // the multi-chip build beats the monolithic implementation of the same
    // system, and the advantage grows with multiplicity.
    let lib = lib();
    let result = scms_anchor_grid(&lib);
    let winners = result.winners(ReuseScheme::Scms);
    assert_eq!(winners.len(), 3);
    let mut savings = Vec::new();
    for w in &winners {
        let (best, _) = w.best.as_ref().expect("anchor grid is feasible");
        assert_eq!(best.integration, IntegrationKind::Mcm, "{w}");
        let saving = w.saving_vs_soc_frac.expect("SoC baseline is on the grid");
        assert!(saving > 0.0, "{w}");
        savings.push((w.area_mm2, saving));
    }
    savings.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert!(
        savings[2].1 > savings[0].1,
        "the 4X member must save more than the 1X member: {savings:?}"
    );
}

#[test]
fn ocme_grid_cells_match_the_fig9_anchors() {
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![160.0, 320.0, 480.0, 800.0],
        quantities: vec![500_000],
        integrations: vec![IntegrationKind::Soc, IntegrationKind::Mcm],
        chiplet_counts: vec![1, 2, 3, 5],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Ocme],
        ..PortfolioSpace::default()
    };
    let result = explore_portfolio(&lib, &space, 2).unwrap();
    let fig = fig9::compute(&lib).unwrap();
    let basis = OcmeSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("C+2X+2Y")
        .unwrap()
        .re()
        .total()
        .usd();

    let cells = result.cells();
    for (chips, name) in [(1u32, "C"), (2, "C+1X"), (3, "C+1X+1Y"), (5, "C+2X+2Y")] {
        let area = 160.0 * f64::from(chips);
        let grid = |integration: IntegrationKind| {
            cells
                .iter()
                .find(|c| c.area_mm2 == area && c.chiplets == chips && c.integration == integration)
                .and_then(|c| c.outcome.candidate())
                .unwrap_or_else(|| panic!("{name} {integration} cell must be feasible"))
        };
        let mcm = fig.cell(name, fig9::Fig9Variant::Mcm).unwrap();
        close(
            grid(IntegrationKind::Mcm).per_unit.usd(),
            mcm.total() * basis,
            &format!("{name} MCM total"),
        );
        let soc = fig.cell(name, fig9::Fig9Variant::Soc).unwrap();
        close(
            grid(IntegrationKind::Soc).per_unit.usd(),
            soc.total() * basis,
            &format!("{name} SoC total"),
        );
    }
}

#[test]
fn fsmc_grid_cells_reconstruct_the_fig10_average() {
    // Figure 10 reports the *average* normalized cost over every
    // collocation of (k=4, n=4). Same-size collocations cost the same
    // (identical footprints, symmetric usage weights), so the grid's four
    // size cells weighted by the multiset counts must reconstruct the
    // figure's average exactly.
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![160.0, 320.0, 480.0, 640.0],
        quantities: vec![500_000],
        integrations: vec![IntegrationKind::Mcm],
        chiplet_counts: vec![1, 2, 3, 4],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Fsmc],
        ..PortfolioSpace::default()
    };
    let result = explore_portfolio(&lib, &space, 2).unwrap();

    // First: every size cell must equal the directly-costed `sA` member.
    let direct = FsmcSpec::paper_example(4, 4)
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let cells = result.cells();
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for s in [1u32, 2, 3, 4] {
        let area = 160.0 * f64::from(s);
        let cell = cells
            .iter()
            .find(|c| c.area_mm2 == area && c.chiplets == s)
            .and_then(|c| c.outcome.candidate())
            .unwrap_or_else(|| panic!("size-{s} cell must be feasible"));
        let label = format!("{s}A");
        let member = direct.system(&label).unwrap();
        close(
            cell.per_unit.usd(),
            member.per_unit_total().usd(),
            &format!("size-{s} member"),
        );
        let count = multiset_count(4, s) as f64;
        weighted += cell.per_unit.usd() * count;
        weight += count;
    }

    // Second: the count-weighted grid cells reconstruct the figure's bar.
    let fig = fig10::compute(&lib).unwrap();
    let first_soc = FsmcSpec::paper_example(2, 2)
        .unwrap()
        .soc_portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let basis = first_soc.average_per_unit().usd();
    let bar = fig.cell(4, 4, IntegrationKind::Mcm).unwrap();
    let grid_average = weighted / weight;
    assert!(
        (grid_average - bar.total() * basis).abs() <= 1e-6 * basis,
        "grid average {grid_average} vs Figure 10 bar {}",
        bar.total() * basis
    );
}

#[test]
fn fsmc_situation_axis_reproduces_all_five_fig10_bars() {
    // ROADMAP follow-up closed by this PR: the (k, n) situations are a
    // grid axis, so ONE exploration run sweeps Figure 10's x-axis. Every
    // situation's bar is reconstructed from its size cells weighted by the
    // multiset counts and pinned against the figure to 1e-9.
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![160.0, 320.0, 480.0, 640.0],
        quantities: vec![500_000],
        integrations: vec![
            IntegrationKind::Soc,
            IntegrationKind::Mcm,
            IntegrationKind::TwoPointFiveD,
        ],
        chiplet_counts: vec![1, 2, 3, 4],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Fsmc],
        fsmc_situations: PortfolioSpace::FSMC_PAPER_SITUATIONS.to_vec(),
        ..PortfolioSpace::default()
    };
    assert_eq!(space.scheme_variants().len(), 5);
    let result = explore_portfolio(&lib, &space, 2).unwrap();
    let cells = result.cells();
    let fig = fig10::compute(&lib).unwrap();
    let first_soc = FsmcSpec::paper_example(2, 2)
        .unwrap()
        .soc_portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap();
    let basis = first_soc.average_per_unit().usd();

    for (k, n) in fig10::SITUATIONS {
        let params = format!("k={k},n={n}");
        for kind in [
            IntegrationKind::Soc,
            IntegrationKind::Mcm,
            IntegrationKind::TwoPointFiveD,
        ] {
            let mut weighted = 0.0;
            let mut weight = 0.0;
            for size in 1..=k {
                let area = 160.0 * f64::from(size);
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.area_mm2 == area
                            && c.chiplets == size
                            && c.integration == kind
                            && c.scheme_params == params
                    })
                    .and_then(|c| c.outcome.candidate())
                    .unwrap_or_else(|| panic!("({k},{n}) {kind} size-{size} must be feasible"));
                let count = multiset_count(n, size) as f64;
                weighted += cell.per_unit.usd() * count;
                weight += count;
            }
            let bar = fig.cell(k, n, kind).unwrap();
            let anchor = bar.total() * basis;
            let grid_average = weighted / weight;
            assert!(
                (grid_average - anchor).abs() <= 1e-6 * basis,
                "(k={k},n={n}) {kind}: grid average {grid_average} vs Figure 10 bar {anchor}"
            );
        }
        // Oversized collocations of this situation are incompatible cells.
        for size in (k + 1)..=4 {
            let cell = cells
                .iter()
                .find(|c| {
                    c.chiplets == size
                        && c.scheme_params == params
                        && c.integration == IntegrationKind::Mcm
                        && c.area_mm2 == 160.0 * f64::from(size)
                })
                .unwrap();
            assert!(
                matches!(
                    cell.outcome,
                    chiplet_actuary::dse::explore::CellOutcome::Incompatible(_)
                ),
                "size {size} must not fit a {k}-socket package"
            );
        }
    }
}

#[test]
fn ocme_center_axis_reproduces_the_fig9_hetero_bars() {
    // ROADMAP follow-up closed by this PR: the mature-node OCME centre is
    // a grid axis. With package reuse on, the homogeneous variant pins the
    // Figure 9 "MCM+pkg-reuse" bars and the 14nm-centre variant the
    // "hetero" bars, to 1e-9.
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![160.0, 320.0, 480.0, 800.0],
        quantities: vec![500_000],
        integrations: vec![IntegrationKind::Mcm],
        chiplet_counts: vec![1, 2, 3, 5],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Ocme],
        ocme_center_nodes: vec![None, Some("14nm".to_string())],
        package_reuse: true,
        ..PortfolioSpace::default()
    };
    let result = explore_portfolio(&lib, &space, 2).unwrap();
    let fig = fig9::compute(&lib).unwrap();
    let basis = OcmeSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("C+2X+2Y")
        .unwrap()
        .re()
        .total()
        .usd();

    let cells = result.cells();
    for (chips, name) in [(1u32, "C"), (2, "C+1X"), (3, "C+1X+1Y"), (5, "C+2X+2Y")] {
        let area = 160.0 * f64::from(chips);
        let grid = |params: &str| {
            cells
                .iter()
                .find(|c| c.area_mm2 == area && c.chiplets == chips && c.scheme_params == params)
                .and_then(|c| c.outcome.candidate())
                .unwrap_or_else(|| panic!("{name} ({params:?}) cell must be feasible"))
        };
        let homo = fig.cell(name, fig9::Fig9Variant::McmPackageReuse).unwrap();
        close(
            grid("").per_unit.usd(),
            homo.total() * basis,
            &format!("{name} pkg-reuse total"),
        );
        let hetero = fig
            .cell(name, fig9::Fig9Variant::McmPackageReuseHetero)
            .unwrap();
        close(
            grid("center=14nm").per_unit.usd(),
            hetero.total() * basis,
            &format!("{name} hetero total"),
        );
    }
}

#[test]
fn streaming_csv_matches_the_materialized_string() {
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![400.0],
        quantities: vec![500_000],
        ..PortfolioSpace::default()
    };
    let result = explore_portfolio(&lib, &space, 1).unwrap();
    let mut streamed = String::new();
    result.grid_artifact().write_csv_to(&mut streamed).unwrap();
    assert_eq!(streamed, result.grid_artifact().csv());

    let single = explore_with(&lib, &ExploreSpace::default(), 2, CorePolicy::Cached).unwrap();
    let mut streamed = String::new();
    single.grid_artifact().write_csv_to(&mut streamed).unwrap();
    assert_eq!(streamed, single.grid_artifact().csv());
}

#[test]
fn program_pareto_point_matches_the_fig8_anchor() {
    // A one-cell SCMS grid at the Figure 8 operating point: the program
    // Pareto front must contain exactly that cell, and its program total
    // must be the figure-anchored per-unit cost times the quantity.
    let lib = lib();
    let space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![400.0], // 2 chiplets × the paper's 200 mm² module
        quantities: vec![500_000],
        integrations: vec![IntegrationKind::Mcm],
        chiplet_counts: vec![2],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Scms],
        ..PortfolioSpace::default()
    };
    let result = explore_portfolio(&lib, &space, 1).unwrap();
    let front = result.pareto_program(ReuseScheme::Scms);
    assert_eq!(front.len(), 1);
    let cell = &front[0];
    let candidate = cell.outcome.candidate().unwrap();

    // The anchor: the 2X member of the paper's SCMS MCM portfolio.
    let anchor = ScmsSpec::paper_example()
        .unwrap()
        .portfolio()
        .unwrap()
        .cost(&lib, AssemblyFlow::ChipLast)
        .unwrap()
        .system("2X")
        .unwrap()
        .per_unit_total()
        .usd();
    close(
        candidate.per_unit.usd(),
        anchor,
        "2X per-unit vs fig8 anchor",
    );
    close(
        candidate.per_unit.usd() * cell.quantity as f64,
        anchor * 500_000.0,
        "2X program total vs fig8 anchor",
    );
    // The artifact reports the same point.
    let csv = result.pareto_program_artifact().csv();
    assert_eq!(csv.lines().count(), 2, "{csv}");
    assert!(csv.lines().nth(1).unwrap().starts_with("scms,"), "{csv}");
}
