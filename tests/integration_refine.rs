//! Integration tests of coarse-to-fine refinement against the full model
//! stack: on tier-1-sized grids the refined path must reproduce the
//! exhaustive winner tables and both Pareto fronts byte for byte — across
//! area and quantity strides, across 1 vs 4 threads, and across the
//! reuse-scheme axes — while evaluating strictly fewer cells than
//! exhaustion. The crossover test anchors the quantity axis to the
//! committed §4.2 scenario: 2-D refinement must find the same
//! MCM-under-SoC crossover quantity that exhaustion finds.

use chiplet_actuary::dse::explore::{explore, ExploreSpace};
use chiplet_actuary::dse::portfolio::{
    explore_portfolio, PortfolioResult, PortfolioSpace, ReuseScheme,
};
use chiplet_actuary::dse::refine::{
    explore_portfolio_refined_with, explore_refined, ExploreMode, RefineOptions,
};
use chiplet_actuary::prelude::*;
use chiplet_actuary::scenario::{Job, Scenario, SweepAxis};

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

/// A tier-1-sized reference grid with a long strictly increasing area
/// ramp (the original refinement axis) crossed with every reuse scheme:
/// 2 nodes × 24 areas × 2 quantities × 4 integrations × 5 chiplet counts
/// × 6 scheme variants = 11,520 cells of mixed feasibility.
fn reference_space() -> PortfolioSpace {
    PortfolioSpace {
        nodes: vec!["14nm".to_string(), "5nm".to_string()],
        areas_mm2: (1..=24).map(|i| f64::from(i) * 45.0).collect(),
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: ReuseScheme::ALL.to_vec(),
        ..PortfolioSpace::default()
    }
}

/// A quantity-swept reference grid: the quantity axis is long enough
/// (16 points crossing the §4.2 amortization band) for coarse sampling
/// and bisection to have real gaps to skip on that axis.
fn quantity_swept_space() -> PortfolioSpace {
    PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: (1..=10).map(|i| f64::from(i) * 90.0).collect(),
        quantities: (1..=16).map(|i| i * 750_000).collect(),
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None, ReuseScheme::Scms],
        ..PortfolioSpace::default()
    }
}

fn area_strides(stride: usize) -> RefineOptions {
    RefineOptions {
        area_stride: stride,
        quantity_stride: 0,
    }
}

#[test]
fn refined_portfolio_matches_exhaustion_across_strides_and_threads() {
    let lib = lib();
    let space = reference_space();
    let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
    for (stride, threads) in [(4, 1), (4, 4), (8, 1), (8, 4)] {
        let refined =
            explore_portfolio_refined_with(&lib, &space, threads, area_strides(stride)).unwrap();
        assert_eq!(refined.len(), exhaustive.len());
        assert_eq!(
            refined.winners_artifact().csv(),
            exhaustive.winners_artifact().csv(),
            "stride={stride} threads={threads}: winner tables must be byte-identical"
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            exhaustive.pareto_artifact().csv(),
            "stride={stride} threads={threads}: per-unit fronts must be byte-identical"
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            exhaustive.pareto_program_artifact().csv(),
            "stride={stride} threads={threads}: program fronts must be byte-identical"
        );
        assert_eq!(
            refined.feasible_count()
                + refined.infeasible_count()
                + refined.incompatible_count()
                + refined.pruned_count(),
            refined.len(),
            "stride={stride} threads={threads}: no cell may be silently dropped"
        );
        // Refinement must visit strictly fewer cells than exhaustion.
        // (Core-evaluation counts can exceed cached exhaustion on grids
        // this small — each refinement pass re-derives the cores it
        // touches — so the ≥10× evaluation reduction is pinned by the
        // 10⁷-cell benchmark, not here.)
        assert!(
            refined.len() - refined.pruned_count() < exhaustive.len(),
            "stride={stride} threads={threads}: refinement must actually skip cells"
        );
    }
}

#[test]
fn quantity_refined_portfolio_matches_exhaustion_across_strides_and_threads() {
    let lib = lib();
    let space = quantity_swept_space();
    let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
    for (quantity_stride, threads) in [(4, 1), (4, 4), (8, 1), (8, 4)] {
        let options = RefineOptions {
            area_stride: 4,
            quantity_stride,
        };
        let refined = explore_portfolio_refined_with(&lib, &space, threads, options).unwrap();
        assert_eq!(
            refined.winners_artifact().csv(),
            exhaustive.winners_artifact().csv(),
            "quantity_stride={quantity_stride} threads={threads}: winner tables must match"
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            exhaustive.pareto_artifact().csv(),
            "quantity_stride={quantity_stride} threads={threads}: per-unit fronts must match"
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            exhaustive.pareto_program_artifact().csv(),
            "quantity_stride={quantity_stride} threads={threads}: program fronts must match"
        );
        assert!(
            refined.pruned_count() > 0,
            "quantity_stride={quantity_stride} threads={threads}: 2-D refinement must prune"
        );
        assert_eq!(
            refined.feasible_count()
                + refined.infeasible_count()
                + refined.incompatible_count()
                + refined.pruned_count(),
            refined.len(),
            "quantity_stride={quantity_stride} threads={threads}: no cell silently dropped"
        );
    }
}

#[test]
fn refined_decisions_do_not_depend_on_the_thread_count() {
    let lib = lib();
    let space = reference_space();
    let serial = explore_portfolio_refined_with(&lib, &space, 1, area_strides(8)).unwrap();
    let parallel = explore_portfolio_refined_with(&lib, &space, 4, area_strides(8)).unwrap();
    // Not just the headline tables: the entire evaluated/pruned cell set
    // and the evaluation count must be identical, or refinement decisions
    // leaked a dependence on work scheduling.
    assert_eq!(serial.grid_artifact().csv(), parallel.grid_artifact().csv());
    assert_eq!(serial.pruned_count(), parallel.pruned_count());
    assert_eq!(serial.core_evaluations(), parallel.core_evaluations());
}

/// The first swept quantity at which the scheme-free winner is the MCM —
/// the §4.2 "reuse payback" point the crossover scenario plots.
fn mcm_crossover_quantity(result: &PortfolioResult) -> Option<u64> {
    result
        .winners(ReuseScheme::None)
        .into_iter()
        .find(|w| matches!(&w.best, Some((c, _)) if c.integration == IntegrationKind::Mcm))
        .map(|w| w.quantity)
}

#[test]
fn two_d_refinement_finds_the_crossover_quantity_of_the_committed_scenario() {
    // Anchor the quantity axis to the committed §4.2 scenario rather than
    // an ad-hoc grid: read crossover.toml's sweep and grid the same
    // (node, area, quantities) with SoC vs the 2-chiplet MCM.
    let path = format!(
        "{}/examples/scenarios/crossover.toml",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let scenario = Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let sweep = scenario
        .jobs
        .iter()
        .find_map(|j| match j {
            Job::Sweep(s) => Some(s),
            _ => None,
        })
        .expect("crossover.toml carries the §4.2 sweep job");
    let SweepAxis::Quantity {
        area_mm2,
        quantities,
    } = &sweep.axis
    else {
        panic!("the crossover sweep is quantity-swept");
    };

    let space = PortfolioSpace {
        nodes: vec![sweep.node.clone()],
        areas_mm2: vec![*area_mm2],
        quantities: quantities.clone(),
        integrations: vec![IntegrationKind::Soc, IntegrationKind::Mcm],
        chiplet_counts: vec![1, sweep.chiplets],
        flows: vec![sweep.flow],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    let exhaustive = explore_portfolio(&lib(), &space, 1).unwrap();
    let refined = explore_portfolio_refined_with(
        &lib(),
        &space,
        1,
        RefineOptions {
            area_stride: 1,
            quantity_stride: 4,
        },
    )
    .unwrap();

    let anchor = mcm_crossover_quantity(&exhaustive)
        .expect("§4.2: the MCM must undercut the SoC at some swept quantity");
    // The §4.2 shape: the SoC wins the low-volume end (its single mask
    // set amortizes first), so the crossover sits strictly inside the
    // sweep.
    assert!(anchor > quantities[0], "the SoC must win at low volume");
    assert_eq!(
        mcm_crossover_quantity(&refined),
        Some(anchor),
        "2-D refinement must find the same MCM-under-SoC crossover quantity as exhaustion"
    );
    assert_eq!(
        refined.winners_artifact().csv(),
        exhaustive.winners_artifact().csv()
    );
}

#[test]
fn single_system_refinement_matches_explore_through_the_facade() {
    let lib = lib();
    let space = ExploreSpace {
        nodes: vec!["7nm".to_string(), "5nm".to_string()],
        areas_mm2: (1..=30).map(|i| f64::from(i) * 40.0).collect(),
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flow: AssemblyFlow::ChipLast,
    };
    let exhaustive = explore(&lib, &space, 2).unwrap();
    let refined = explore_refined(&lib, &space, 2).unwrap();
    assert_eq!(
        refined.winners_artifact().csv(),
        exhaustive.winners_artifact().csv()
    );
    assert_eq!(
        refined.pareto_artifact().csv(),
        exhaustive.pareto_artifact().csv()
    );
    assert_eq!(
        refined.pareto_program_artifact().csv(),
        exhaustive.pareto_program_artifact().csv()
    );
}

#[test]
fn explore_mode_parses_the_scenario_spelling() {
    assert_eq!("refine".parse::<ExploreMode>(), Ok(ExploreMode::Refine));
    assert_eq!(
        "EXHAUSTIVE".parse::<ExploreMode>(),
        Ok(ExploreMode::Exhaustive)
    );
    assert!("adaptive".parse::<ExploreMode>().is_err());
}
