//! Integration tests of coarse-to-fine refinement against the full model
//! stack: on tier-1-sized grids the refined path must reproduce the
//! exhaustive winner tables and both Pareto fronts byte for byte — across
//! strides, across 1 vs 4 threads, and across the reuse-scheme axes —
//! while evaluating strictly fewer cells than exhaustion.

use chiplet_actuary::dse::explore::{explore, ExploreSpace};
use chiplet_actuary::dse::portfolio::{explore_portfolio, PortfolioSpace, ReuseScheme};
use chiplet_actuary::dse::refine::{explore_portfolio_refined_with, explore_refined, ExploreMode};
use chiplet_actuary::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

/// A tier-1-sized reference grid with a long strictly increasing area
/// ramp (the refinement axis) crossed with every reuse scheme: 2 nodes ×
/// 24 areas × 2 quantities × 4 integrations × 5 chiplet counts × 6
/// scheme variants = 11,520 cells of mixed feasibility.
fn reference_space() -> PortfolioSpace {
    PortfolioSpace {
        nodes: vec!["14nm".to_string(), "5nm".to_string()],
        areas_mm2: (1..=24).map(|i| f64::from(i) * 45.0).collect(),
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: ReuseScheme::ALL.to_vec(),
        ..PortfolioSpace::default()
    }
}

#[test]
fn refined_portfolio_matches_exhaustion_across_strides_and_threads() {
    let lib = lib();
    let space = reference_space();
    let exhaustive = explore_portfolio(&lib, &space, 1).unwrap();
    for (stride, threads) in [(4, 1), (4, 4), (8, 1), (8, 4)] {
        let refined = explore_portfolio_refined_with(&lib, &space, threads, stride).unwrap();
        assert_eq!(refined.len(), exhaustive.len());
        assert_eq!(
            refined.winners_artifact().csv(),
            exhaustive.winners_artifact().csv(),
            "stride={stride} threads={threads}: winner tables must be byte-identical"
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            exhaustive.pareto_artifact().csv(),
            "stride={stride} threads={threads}: per-unit fronts must be byte-identical"
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            exhaustive.pareto_program_artifact().csv(),
            "stride={stride} threads={threads}: program fronts must be byte-identical"
        );
        assert_eq!(
            refined.feasible_count()
                + refined.infeasible_count()
                + refined.incompatible_count()
                + refined.pruned_count(),
            refined.len(),
            "stride={stride} threads={threads}: no cell may be silently dropped"
        );
        // Refinement must visit strictly fewer cells than exhaustion.
        // (Core-evaluation counts can exceed cached exhaustion on grids
        // this small — each refinement pass re-derives the cores it
        // touches — so the ≥10× evaluation reduction is pinned by the
        // 10⁷-cell benchmark, not here.)
        assert!(
            refined.len() - refined.pruned_count() < exhaustive.len(),
            "stride={stride} threads={threads}: refinement must actually skip cells"
        );
    }
}

#[test]
fn refined_decisions_do_not_depend_on_the_thread_count() {
    let lib = lib();
    let space = reference_space();
    let serial = explore_portfolio_refined_with(&lib, &space, 1, 8).unwrap();
    let parallel = explore_portfolio_refined_with(&lib, &space, 4, 8).unwrap();
    // Not just the headline tables: the entire evaluated/pruned cell set
    // and the evaluation count must be identical, or refinement decisions
    // leaked a dependence on work scheduling.
    assert_eq!(serial.grid_artifact().csv(), parallel.grid_artifact().csv());
    assert_eq!(serial.pruned_count(), parallel.pruned_count());
    assert_eq!(serial.core_evaluations(), parallel.core_evaluations());
}

#[test]
fn single_system_refinement_matches_explore_through_the_facade() {
    let lib = lib();
    let space = ExploreSpace {
        nodes: vec!["7nm".to_string(), "5nm".to_string()],
        areas_mm2: (1..=30).map(|i| f64::from(i) * 40.0).collect(),
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flow: AssemblyFlow::ChipLast,
    };
    let exhaustive = explore(&lib, &space, 2).unwrap();
    let refined = explore_refined(&lib, &space, 2).unwrap();
    assert_eq!(
        refined.winners_artifact().csv(),
        exhaustive.winners_artifact().csv()
    );
    assert_eq!(
        refined.pareto_artifact().csv(),
        exhaustive.pareto_artifact().csv()
    );
    assert_eq!(
        refined.pareto_program_artifact().csv(),
        exhaustive.pareto_program_artifact().csv()
    );
}

#[test]
fn explore_mode_parses_the_scenario_spelling() {
    assert_eq!("refine".parse::<ExploreMode>(), Ok(ExploreMode::Refine));
    assert_eq!(
        "EXHAUSTIVE".parse::<ExploreMode>(),
        Ok(ExploreMode::Exhaustive)
    );
    assert!("adaptive".parse::<ExploreMode>().is_err());
}
