//! Integration tests of the multi-axis exploration engine against the full
//! model stack: the parallel grid must agree with the serial grid byte for
//! byte, with the single-point optimizer, and with the paper's §6 shape.

use chiplet_actuary::dse::explore::{explore, CellOutcome, ExploreSpace};
use chiplet_actuary::dse::optimizer::{recommend, SearchSpace};
use chiplet_actuary::prelude::*;

fn lib() -> TechLibrary {
    TechLibrary::paper_defaults().unwrap()
}

/// The fixed grid the determinism tests run on: two nodes, five areas
/// from 150 mm² past the 900 mm² Figure 4 ceiling to 1,200 mm², two
/// quantities, 1–9 chiplets — 720 cells of mixed feasibility.
fn fixed_space() -> ExploreSpace {
    ExploreSpace {
        nodes: vec!["14nm".to_string(), "5nm".to_string()],
        areas_mm2: vec![150.0, 300.0, 600.0, 900.0, 1_200.0],
        quantities: vec![500_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
        flow: AssemblyFlow::ChipLast,
    }
}

#[test]
fn serial_and_parallel_exploration_agree_on_a_fixed_grid() {
    let lib = lib();
    let space = fixed_space();
    assert_eq!(space.len(), 2 * 5 * 2 * 4 * 9);
    let serial = explore(&lib, &space, 1).unwrap();
    assert_eq!(serial.threads(), 1);
    for threads in [2, 3, 8] {
        let parallel = explore(&lib, &space, threads).unwrap();
        assert_eq!(serial.cells(), parallel.cells(), "threads={threads}");
        assert_eq!(
            serial.grid_artifact().csv(),
            parallel.grid_artifact().csv(),
            "threads={threads}: the CSV must be byte-identical"
        );
        assert_eq!(
            serial.winners_artifact().csv(),
            parallel.winners_artifact().csv()
        );
    }
    // threads = 0 resolves to the machine's parallelism and still agrees.
    let auto = explore(&lib, &space, 0).unwrap();
    assert!(auto.threads() >= 1);
    assert_eq!(serial.grid_artifact().csv(), auto.grid_artifact().csv());
}

#[test]
fn every_cell_is_accounted_for() {
    let result = explore(&lib(), &fixed_space(), 4).unwrap();
    assert_eq!(result.len(), fixed_space().len());
    assert_eq!(
        result.feasible_count() + result.infeasible_count() + result.incompatible_count(),
        result.len(),
        "no cell may be silently dropped"
    );
    // The grid deliberately includes infeasible geometry (a 1,200 mm²
    // monolithic die at 14 nm exceeds no wafer, but 9-way 14nm splits of
    // 150 mm² produce dies below the engine's floor, and SoC × >1 cells
    // are incompatible) — all of it must be recorded with a reason.
    assert!(result.incompatible_count() > 0);
    for cell in result.cells() {
        match &cell.outcome {
            CellOutcome::Feasible(c) => assert!(c.per_unit.usd() > 0.0),
            CellOutcome::Infeasible(reason) => assert!(!reason.is_empty()),
            CellOutcome::Incompatible(reason) => {
                assert!(!reason.to_string().is_empty())
            }
            CellOutcome::Pruned => panic!("exhaustive exploration never prunes"),
        }
    }
}

#[test]
fn grid_winners_match_the_single_point_optimizer() {
    let lib = lib();
    let space = ExploreSpace {
        nodes: vec!["7nm".to_string(), "5nm".to_string()],
        areas_mm2: vec![400.0, 800.0],
        quantities: vec![2_000_000, 10_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: vec![1, 2, 3, 4, 5],
        flow: AssemblyFlow::ChipLast,
    };
    let result = explore(&lib, &space, 2).unwrap();
    let search = SearchSpace::default(); // multi-chip kinds × {2,3,4,5}
    for w in result.winners() {
        let rec = recommend(
            &lib,
            &w.node,
            Area::from_mm2(w.area_mm2).unwrap(),
            Quantity::new(w.quantity),
            &search,
        )
        .unwrap();
        let best = w.best.as_ref().expect("these operating points cost fine");
        assert!(
            (best.per_unit.usd() - rec.per_unit.usd()).abs() < 1e-9,
            "{}/{}/{}: grid {} vs optimizer {}",
            w.node,
            w.area_mm2,
            w.quantity,
            best.per_unit,
            rec.per_unit
        );
        assert_eq!(best.integration, rec.integration);
        assert_eq!(best.chiplets, rec.chiplets);
    }
}

#[test]
fn the_grid_reproduces_the_section_6_takeaways() {
    // §6 at grid scale: small cheap-node low-volume systems stay
    // monolithic; huge advanced-node high-volume systems split.
    let result = explore(
        &lib(),
        &ExploreSpace {
            nodes: vec!["14nm".to_string(), "5nm".to_string()],
            areas_mm2: vec![150.0, 800.0],
            quantities: vec![100_000, 10_000_000],
            integrations: IntegrationKind::ALL.to_vec(),
            chiplet_counts: vec![1, 2, 3, 4, 5],
            flow: AssemblyFlow::ChipLast,
        },
        0,
    )
    .unwrap();
    let winners = result.winners();
    let winner_of = |node: &str, area: f64, quantity: u64| {
        winners
            .iter()
            .find(|w| w.node == node && w.area_mm2 == area && w.quantity == quantity)
            .and_then(|w| w.best.as_ref())
            .expect("operating point must have a winner")
    };
    let small = winner_of("14nm", 150.0, 100_000);
    assert_eq!(small.integration, IntegrationKind::Soc, "{small}");
    let big = winner_of("5nm", 800.0, 10_000_000);
    assert!(big.chiplets >= 2, "{big}");
}

#[test]
fn pareto_front_over_the_fixed_grid_is_non_dominated() {
    let result = explore(&lib(), &fixed_space(), 4).unwrap();
    let front = result.pareto_front();
    assert!(!front.is_empty());
    for (i, a) in front.iter().enumerate() {
        let ca = a.outcome.candidate().unwrap();
        for b in front.iter().skip(i + 1) {
            let cb = b.outcome.candidate().unwrap();
            let a_dom = ca.per_unit <= cb.per_unit && a.chiplets <= b.chiplets;
            let b_dom = cb.per_unit <= ca.per_unit && b.chiplets <= a.chiplets;
            assert!(
                !(a_dom || b_dom),
                "front points must be mutually non-dominated"
            );
        }
    }
}
