//! **chiplet-actuary** — a quantitative cost model and multi-chiplet
//! architecture exploration toolkit, reproducing *Chiplet Actuary*
//! (Feng & Ma, DAC 2022) as a production-grade Rust workspace.
//!
//! The facade re-exports the whole workspace under stable module names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`units`] | `actuary-units` | [`Area`], [`Money`], [`Prob`], [`Quantity`] newtypes |
//! | [`yield_model`] | `actuary-yield` | Eq. (1) yield models, wafer geometry, reticle |
//! | [`tech`] | `actuary-tech` | process nodes, packaging, D2D, [`TechLibrary`] |
//! | [`model`] | `actuary-model` | RE (Eq. 4/5) and NRE (Eq. 6–8) cost engine |
//! | [`arch`] | `actuary-arch` | modules/chips/systems/portfolios, reuse schemes, partitioning |
//! | [`mc`] | `actuary-mc` | Monte-Carlo assembly-flow validation |
//! | [`dse`] | `actuary-dse` | crossovers, Pareto, sensitivity, maturity, optimizer |
//! | [`report`] | `actuary-report` | ASCII charts/tables, CSV, Markdown |
//! | [`figures`] | `actuary-figures` | reproduction of the paper's Figures 2–10 |
//!
//! # Quickstart
//!
//! ```
//! use chiplet_actuary::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let n5 = lib.node("5nm")?;
//!
//! // Monolithic 800 mm² SoC vs two chiplets on an MCM:
//! let soc = re_cost(
//!     &[DiePlacement::new(n5, Area::from_mm2(800.0)?, 1)],
//!     lib.packaging(IntegrationKind::Soc)?,
//!     AssemblyFlow::ChipLast,
//! )?;
//! let die = n5.d2d().inflate_module_area(Area::from_mm2(400.0)?)?;
//! let mcm = re_cost(
//!     &[DiePlacement::new(n5, die, 2)],
//!     lib.packaging(IntegrationKind::Mcm)?,
//!     AssemblyFlow::ChipLast,
//! )?;
//! assert!(mcm.total() < soc.total());
//! # Ok(())
//! # }
//! ```
//!
//! [`Area`]: units::Area
//! [`Money`]: units::Money
//! [`Prob`]: units::Prob
//! [`Quantity`]: units::Quantity
//! [`TechLibrary`]: tech::TechLibrary

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Unit and money newtypes ([`actuary_units`]).
pub mod units {
    pub use actuary_units::*;
}

/// Yield models and wafer geometry ([`actuary_yield`]).
pub mod yield_model {
    pub use actuary_yield::*;
}

/// Technology library ([`actuary_tech`]).
pub mod tech {
    pub use actuary_tech::*;
}

/// RE / NRE cost engine ([`actuary_model`]).
pub mod model {
    pub use actuary_model::*;
}

/// Architecture abstractions and reuse schemes ([`actuary_arch`]).
pub mod arch {
    pub use actuary_arch::*;
}

/// Declarative scenario files ([`actuary_scenario`]).
pub mod scenario {
    pub use actuary_scenario::*;
}

/// Monte-Carlo assembly simulation ([`actuary_mc`]).
pub mod mc {
    pub use actuary_mc::*;
}

/// Design-space exploration ([`actuary_dse`]).
pub mod dse {
    pub use actuary_dse::*;
}

/// Reporting: charts, tables, CSV ([`actuary_report`]).
pub mod report {
    pub use actuary_report::*;
}

/// Paper figure reproduction ([`actuary_figures`]).
pub mod figures {
    pub use actuary_figures::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use actuary_arch::{
        partition, reuse, Chip, Module, Portfolio, PortfolioCost, System, SystemCost,
    };
    pub use actuary_model::{
        re_cost, re_cost_sized, AssemblyFlow, DiePlacement, NreBreakdown, ReCostBreakdown,
        TotalCost,
    };
    pub use actuary_tech::{
        D2dSpec, IntegrationKind, NodeId, PackagingTech, ProcessNode, TechLibrary,
    };
    pub use actuary_units::{Area, Money, Prob, Quantity};
    pub use actuary_yield::{DefectDensity, NegativeBinomial, Reticle, WaferSpec, YieldModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let chip = Chip::chiplet(
            "c",
            "7nm",
            vec![Module::new("m", "7nm", Area::from_mm2(100.0).unwrap())],
        );
        let system = System::builder("s", IntegrationKind::Mcm)
            .chip(chip, 2)
            .quantity(Quantity::new(1_000_000))
            .build()
            .unwrap();
        let cost = Portfolio::new(vec![system])
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        assert!(cost.systems()[0].per_unit_total().usd() > 0.0);
    }
}
